#include "core/backup.h"

#include <gtest/gtest.h>

#include "graph/bridges.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

/// Diamond with two fully disjoint routes 0 -> 3, servers on both.
topo::Topology diamond() {
  topo::Topology t;
  t.name = "diamond";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 3, 1.0);
  t.graph.add_edge(0, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {1, 2};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 8000, 8000, 0};
  return t;
}

nfv::Request simple_request() {
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  return r;
}

TEST(Backup, DisjointBackupOnDiamond) {
  const topo::Topology t = diamond();
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  const nfv::Request r = simple_request();

  const OfflineSolution primary = appro_multi(t, costs, r);
  ASSERT_TRUE(primary.admitted);
  const OfflineSolution backup =
      compute_backup_tree(t, costs, r, primary.tree);
  ASSERT_TRUE(backup.admitted) << backup.reject_reason;
  EXPECT_TRUE(link_disjoint(primary.tree, backup.tree));
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(t.graph, r, backup.tree, &error)) << error;
  // Different server side of the diamond.
  EXPECT_NE(primary.tree.servers, backup.tree.servers);
}

TEST(Backup, RejectsWhenPrimaryUsesABridge) {
  // Path topology: every link is a bridge, no disjoint backup exists.
  topo::Topology t;
  t.graph = graph::Graph(3);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.servers = {1};
  t.link_bandwidth = {1000, 1000};
  t.server_compute = {0, 8000, 0};
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {2};
  r.bandwidth_mbps = 50.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const OfflineSolution primary = appro_multi(t, costs, r);
  ASSERT_TRUE(primary.admitted);
  const graph::CutAnalysis cut = graph::find_cut_elements(t.graph);
  EXPECT_FALSE(cut.bridges.empty());  // the reason a backup cannot exist
  const OfflineSolution backup = compute_backup_tree(t, costs, r, primary.tree);
  EXPECT_FALSE(backup.admitted);
}

TEST(Backup, LinkDisjointPredicate) {
  PseudoMulticastTree a;
  a.edge_uses = {{0, 1}, {2, 1}};
  PseudoMulticastTree b;
  b.edge_uses = {{1, 1}, {3, 1}};
  EXPECT_TRUE(link_disjoint(a, b));
  b.edge_uses.push_back({2, 1});
  EXPECT_FALSE(link_disjoint(a, b));
}

TEST(Backup, UnknownPrimaryEdgeRejected) {
  const topo::Topology t = diamond();
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  PseudoMulticastTree bogus;
  bogus.edge_uses = {{99, 1}};
  EXPECT_THROW(compute_backup_tree(t, costs, simple_request(), bogus),
               std::invalid_argument);
}

TEST(Backup, HonorsResidualState) {
  // The alternative route exists but its links lack residual bandwidth.
  const topo::Topology t = diamond();
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  const nfv::Request r = simple_request();
  const OfflineSolution primary = appro_multi(t, costs, r);
  ASSERT_TRUE(primary.admitted);

  nfv::ResourceState state(t);
  // Saturate whichever diamond side the primary did NOT take.
  for (graph::EdgeId e = 0; e < t.num_links(); ++e) {
    bool used = false;
    for (const auto& [pe, mult] : primary.tree.edge_uses) used |= (pe == e);
    if (!used) {
      nfv::Footprint fp;
      fp.bandwidth = {{e, state.residual_bandwidth(e) - 10.0}};  // < 100 left
      state.allocate(fp);
    }
  }
  BackupOptions opts;
  opts.resources = &state;
  const OfflineSolution backup = compute_backup_tree(t, costs, r, primary.tree, opts);
  EXPECT_FALSE(backup.admitted);
}

TEST(Backup, FeasibleFractionOnWellConnectedGraphs) {
  // On a mean-degree-4 Waxman network most requests admit a disjoint backup.
  util::Rng rng(12);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  const topo::Topology t = topo::make_waxman(50, rng, wo);
  const LinearCosts costs = random_costs(t, rng);

  int protected_count = 0;
  int total = 0;
  util::Rng workload(13);
  for (int i = 0; i < 15; ++i) {
    nfv::Request r;
    r.id = static_cast<std::uint64_t>(i);
    r.bandwidth_mbps = 100.0;
    r.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});
    const auto picks = workload.sample_without_replacement(50, 3);
    r.source = static_cast<graph::VertexId>(picks[0]);
    r.destinations = {static_cast<graph::VertexId>(picks[1]),
                      static_cast<graph::VertexId>(picks[2])};
    const OfflineSolution primary = appro_multi(t, costs, r);
    if (!primary.admitted) continue;
    ++total;
    const OfflineSolution backup = compute_backup_tree(t, costs, r, primary.tree);
    if (!backup.admitted) continue;
    EXPECT_TRUE(link_disjoint(primary.tree, backup.tree));
    ++protected_count;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(protected_count, total / 2);
}

TEST(Backup, BackupCostAtLeastPrimaryTypically) {
  // The backup optimizes over a strictly smaller link set, so (per instance,
  // same heuristic) it is not expected to beat the primary; assert it stays
  // within a sane factor instead of an unsound strict inequality.
  const topo::Topology t = diamond();
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  const nfv::Request r = simple_request();
  const OfflineSolution primary = appro_multi(t, costs, r);
  const OfflineSolution backup = compute_backup_tree(t, costs, r, primary.tree);
  ASSERT_TRUE(primary.admitted);
  ASSERT_TRUE(backup.admitted);
  EXPECT_LE(backup.tree.cost, 10.0 * primary.tree.cost);
}

}  // namespace
}  // namespace nfvm::core
