#include "core/batch_planner.h"

#include <gtest/gtest.h>

#include "sim/request_gen.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

struct Scenario {
  topo::Topology topo;
  LinearCosts costs;
  std::vector<nfv::Request> requests;
};

Scenario make_scenario(std::uint64_t seed, std::size_t n, std::size_t count,
                       double max_bw = 2000.0) {
  util::Rng rng(seed);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  wo.capacities.max_bandwidth_mbps = max_bw;  // tight links -> contention
  Scenario s;
  s.topo = topo::make_waxman(n, rng, wo);
  s.costs = random_costs(s.topo, rng);
  sim::RequestGenerator gen(s.topo, rng);
  s.requests = gen.sequence(count);
  return s;
}

TEST(BatchPlanner, CountsAndAlignment) {
  Scenario s = make_scenario(1, 40, 30);
  const BatchPlanResult r = plan_batch(s.topo, s.costs, s.requests);
  EXPECT_EQ(r.num_admitted + r.num_rejected, 30u);
  EXPECT_EQ(r.admitted.size(), 30u);
  EXPECT_EQ(r.trees.size(), 30u);
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (r.admitted[i]) {
      ++flagged;
      std::string error;
      EXPECT_TRUE(validate_pseudo_tree(s.topo.graph, s.requests[i], r.trees[i], &error))
          << error;
    } else {
      EXPECT_TRUE(r.trees[i].routes.empty());
    }
  }
  EXPECT_EQ(flagged, r.num_admitted);
}

TEST(BatchPlanner, TotalCostSumsAdmittedTrees) {
  Scenario s = make_scenario(2, 40, 20);
  const BatchPlanResult r = plan_batch(s.topo, s.costs, s.requests);
  double sum = 0.0;
  for (std::size_t i = 0; i < r.trees.size(); ++i) {
    if (r.admitted[i]) sum += r.trees[i].cost;
  }
  EXPECT_NEAR(r.total_cost, sum, 1e-9);
}

TEST(BatchPlanner, AdmittedFootprintsFitTogether) {
  // Re-apply every admitted footprint to a fresh state: must fit exactly.
  Scenario s = make_scenario(3, 40, 40);
  const BatchPlanResult r = plan_batch(s.topo, s.costs, s.requests);
  nfv::ResourceState state(s.topo);
  for (std::size_t i = 0; i < r.trees.size(); ++i) {
    if (!r.admitted[i]) continue;
    const nfv::Footprint fp = r.trees[i].footprint(s.requests[i]);
    ASSERT_TRUE(state.can_allocate(fp)) << "request " << i;
    state.allocate(fp);
  }
}

TEST(BatchPlanner, ResultIndependentOfSortStability) {
  Scenario s = make_scenario(4, 40, 25);
  const BatchPlanResult a = plan_batch(s.topo, s.costs, s.requests);
  const BatchPlanResult b = plan_batch(s.topo, s.costs, s.requests);
  EXPECT_EQ(a.num_admitted, b.num_admitted);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_NEAR(a.total_cost, b.total_cost, 1e-9);
}

TEST(BatchPlanner, OrderingsProcessSameRequests) {
  Scenario s = make_scenario(5, 50, 60, /*max_bw=*/1500.0);
  for (BatchOrder order : {BatchOrder::kArrival, BatchOrder::kFewestDestinationsFirst,
                           BatchOrder::kSmallestDemandFirst,
                           BatchOrder::kLargestDemandFirst}) {
    BatchPlanOptions opts;
    opts.order = order;
    const BatchPlanResult r = plan_batch(s.topo, s.costs, s.requests, opts);
    EXPECT_EQ(r.num_admitted + r.num_rejected, 60u);
    EXPECT_GT(r.num_admitted, 0u);
  }
}

TEST(BatchPlanner, SmallestFirstAdmitsAtLeastAsManyUnderContention) {
  // Classic knapsack-style effect: lightest-first packs more requests than
  // heaviest-first when capacity binds. Checked on a deterministic loaded
  // scenario.
  Scenario s = make_scenario(6, 50, 80, /*max_bw=*/1200.0);
  BatchPlanOptions small;
  small.order = BatchOrder::kSmallestDemandFirst;
  BatchPlanOptions large;
  large.order = BatchOrder::kLargestDemandFirst;
  const BatchPlanResult rs = plan_batch(s.topo, s.costs, s.requests, small);
  const BatchPlanResult rl = plan_batch(s.topo, s.costs, s.requests, large);
  EXPECT_GE(rs.num_admitted, rl.num_admitted);
}

TEST(BatchPlanner, EmptyBatch) {
  Scenario s = make_scenario(7, 30, 0);
  const BatchPlanResult r = plan_batch(s.topo, s.costs, s.requests);
  EXPECT_EQ(r.num_admitted, 0u);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(r.final_bandwidth_utilization, 0.0);
}

TEST(BatchPlanner, MalformedRequestThrows) {
  Scenario s = make_scenario(8, 30, 3);
  s.requests[1].bandwidth_mbps = -5.0;
  EXPECT_THROW(plan_batch(s.topo, s.costs, s.requests), std::invalid_argument);
}

TEST(BatchPlanner, UtilizationGrowsWithBatchSize) {
  Scenario s = make_scenario(9, 40, 60, /*max_bw=*/2000.0);
  const BatchPlanResult small_batch = plan_batch(
      s.topo, s.costs, std::span<const nfv::Request>(s.requests.data(), 10));
  const BatchPlanResult big_batch = plan_batch(s.topo, s.costs, s.requests);
  EXPECT_GE(big_batch.final_bandwidth_utilization,
            small_batch.final_bandwidth_utilization);
}

}  // namespace
}  // namespace nfvm::core
