#include "graph/bridges.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

TEST(Bridges, PathGraphAllBridges) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(1, 2, 1.0);
  const EdgeId c = g.add_edge(2, 3, 1.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_EQ(cut.bridges, (std::vector<EdgeId>{a, b, c}));
  EXPECT_EQ(cut.articulation_points, (std::vector<VertexId>{1, 2}));
}

TEST(Bridges, CycleHasNone) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_TRUE(cut.bridges.empty());
  EXPECT_TRUE(cut.articulation_points.empty());
}

TEST(Bridges, BarbellBridgeAndArticulations) {
  // Two triangles joined by one edge: the joint is a bridge, its endpoints
  // are articulation points.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  const EdgeId joint = g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 3, 1.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_EQ(cut.bridges, (std::vector<EdgeId>{joint}));
  EXPECT_EQ(cut.articulation_points, (std::vector<VertexId>{2, 3}));
  EXPECT_TRUE(cut.is_bridge(joint));
  EXPECT_FALSE(cut.is_bridge(0));
  EXPECT_TRUE(cut.is_articulation_point(2));
  EXPECT_FALSE(cut.is_articulation_point(0));
}

TEST(Bridges, ParallelEdgesAreNotBridges) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_TRUE(cut.bridges.empty());
}

TEST(Bridges, SelfLoopIgnored) {
  Graph g(2);
  g.add_edge(0, 0, 1.0);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_EQ(cut.bridges, (std::vector<EdgeId>{e}));
}

TEST(Bridges, DisconnectedComponentsHandled) {
  Graph g(5);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 2, 1.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_EQ(cut.bridges, (std::vector<EdgeId>{a}));
  EXPECT_TRUE(cut.articulation_points.empty());
}

TEST(Bridges, StarCenterIsArticulation) {
  Graph g(5);
  for (VertexId v = 1; v < 5; ++v) g.add_edge(0, v, 1.0);
  const CutAnalysis cut = find_cut_elements(g);
  EXPECT_EQ(cut.articulation_points, (std::vector<VertexId>{0}));
  EXPECT_EQ(cut.bridges.size(), 4u);
}

TEST(Bridges, AgreesWithBruteForceOnRandomGraphs) {
  util::Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g(10);
    for (VertexId u = 0; u < 10; ++u) {
      for (VertexId v = u + 1; v < 10; ++v) {
        if (rng.bernoulli(0.25)) g.add_edge(u, v, 1.0);
      }
    }
    const CutAnalysis cut = find_cut_elements(g);
    const std::size_t base_components = connected_components(g).count;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      // Remove edge e and compare component counts.
      Graph without(10);
      for (EdgeId f = 0; f < g.num_edges(); ++f) {
        if (f == e) continue;
        const Edge& ed = g.edge(f);
        without.add_edge(ed.u, ed.v, ed.weight);
      }
      const bool disconnects =
          connected_components(without).count > base_components;
      EXPECT_EQ(cut.is_bridge(e), disconnects)
          << "trial " << trial << " edge " << e;
    }
  }
}

TEST(Bridges, TransitStubUplinksAreBridges) {
  // Each stub hangs off the core via a single uplink, so bridges must exist.
  util::Rng rng(4);
  const topo::Topology t = topo::make_waxman(60, rng);
  // Waxman is typically 2-edge-connected-ish; just ensure the analysis runs
  // and results are sorted/consistent.
  const CutAnalysis cut = find_cut_elements(t.graph);
  EXPECT_TRUE(std::is_sorted(cut.bridges.begin(), cut.bridges.end()));
  EXPECT_TRUE(std::is_sorted(cut.articulation_points.begin(),
                             cut.articulation_points.end()));
}

}  // namespace
}  // namespace nfvm::graph
