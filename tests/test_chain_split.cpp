#include "core/chain_split.h"

#include <gtest/gtest.h>

#include <set>

#include "core/appro_multi.h"
#include "core/exact_offline.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

/// Path 0-1-2-3-4, servers at 1 and 3.
struct Fixture {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;

  Fixture() {
    topo.name = "split-path";
    topo.graph = graph::Graph(5);
    topo.graph.add_edge(0, 1, 1.0);
    topo.graph.add_edge(1, 2, 1.0);
    topo.graph.add_edge(2, 3, 1.0);
    topo.graph.add_edge(3, 4, 1.0);
    topo.servers = {1, 3};
    topo.link_bandwidth = {1000, 1000, 1000, 1000};
    topo.server_compute = {0, 8000, 0, 8000, 0};
    costs = uniform_costs(topo, 1.0, 0.001);

    request.id = 1;
    request.source = 0;
    request.destinations = {4};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain(
        {nfv::NetworkFunction::kNat, nfv::NetworkFunction::kIds});
  }
};

TEST(ChainSplit, AdmitsAndValidates) {
  Fixture f;
  const ChainSplitSolution sol = chain_split_multicast(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
  ASSERT_EQ(sol.placements.size(), 2u);
  EXPECT_EQ(sol.placements[0].first, nfv::NetworkFunction::kNat);
  EXPECT_EQ(sol.placements[1].first, nfv::NetworkFunction::kIds);
}

TEST(ChainSplit, PlacementOrderRespectsChainOrder) {
  // On a path, the walk visits placements in order; the NAT server must not
  // come after the IDS server on the walk.
  Fixture f;
  const ChainSplitSolution sol = chain_split_multicast(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted);
  // With cheap compute everywhere, the walk 0-1[NAT]-2-3[IDS]-4 or a
  // single-server consolidation are both possible; either way the route
  // walk passes the first placement no later than the second.
  const auto& walk = sol.tree.routes[0].walk;
  const auto pos = [&](graph::VertexId v) {
    return std::find(walk.begin(), walk.end(), v) - walk.begin();
  };
  EXPECT_LE(pos(sol.placements[0].second), pos(sol.placements[1].second));
}

TEST(ChainSplit, FootprintChargesPerFunction) {
  Fixture f;
  const ChainSplitSolution sol = chain_split_multicast(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted);
  double total_mhz = 0.0;
  for (const auto& [v, mhz] : sol.footprint.compute) total_mhz += mhz;
  EXPECT_NEAR(total_mhz, f.request.compute_demand_mhz(), 1e-9);
  // Bandwidth entries cover every used edge.
  EXPECT_EQ(sol.footprint.bandwidth.size(), sol.tree.edge_uses.size());
}

TEST(ChainSplit, SingleFunctionMatchesOneServerOptimum) {
  // For |SC| = 1 the split problem *is* the one-server problem (root at the
  // placement server), so the result must land within the exact optimum's
  // 2x KMB envelope and never below the optimum.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    util::Rng rng(seed);
    const topo::Topology topo = topo::make_waxman(18, rng);
    const LinearCosts costs = random_costs(topo, rng);
    nfv::Request r;
    r.id = seed;
    r.bandwidth_mbps = 100.0;
    r.chain = nfv::ServiceChain({nfv::NetworkFunction::kProxy});
    const auto picks = rng.sample_without_replacement(18, 4);
    r.source = static_cast<graph::VertexId>(picks[0]);
    for (std::size_t i = 1; i < picks.size(); ++i) {
      r.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
    }
    const ChainSplitSolution split = chain_split_multicast(topo, costs, r);
    const OfflineSolution opt = exact_one_server(topo, costs, r);
    ASSERT_TRUE(split.admitted);
    ASSERT_TRUE(opt.admitted);
    EXPECT_GE(split.tree.cost + 1e-9, opt.tree.cost) << "seed " << seed;
    EXPECT_LE(split.tree.cost, 2.0 * opt.tree.cost + 1e-9) << "seed " << seed;
  }
}

TEST(ChainSplit, SplitsWhenConsolidationImpossible) {
  Fixture f;
  // Chain at 100 Mbps: NAT 20 MHz + IDS 80 MHz = 100 MHz total.
  // Server capacities: 60 MHz at v1 (fits NAT only), 90 MHz at v3 (fits IDS
  // only). Consolidation (100 MHz on one box) is impossible; the split
  // places NAT at 1 and IDS at 3.
  f.topo.server_compute = {0, 60, 0, 90, 0};
  nfv::ResourceState state(f.topo);

  ApproMultiOptions consolidated;
  consolidated.resources = &state;
  const OfflineSolution appro = appro_multi(f.topo, f.costs, f.request, consolidated);
  EXPECT_FALSE(appro.admitted);
  EXPECT_EQ(appro.reject_reason, "no server can host the service chain");

  ChainSplitOptions opts;
  opts.resources = &state;
  const ChainSplitSolution split = chain_split_multicast(f.topo, f.costs, f.request, opts);
  ASSERT_TRUE(split.admitted) << split.reject_reason;
  ASSERT_EQ(split.placements.size(), 2u);
  EXPECT_EQ(split.placements[0].second, 1u);  // NAT at v1
  EXPECT_EQ(split.placements[1].second, 3u);  // IDS at v3
  EXPECT_TRUE(state.can_allocate(split.footprint));
}

TEST(ChainSplit, RejectsWhenNoPlacementForLastFunction) {
  Fixture f;
  f.topo.server_compute = {0, 60, 0, 60, 0};  // IDS (80 MHz) fits nowhere
  nfv::ResourceState state(f.topo);
  ChainSplitOptions opts;
  opts.resources = &state;
  const ChainSplitSolution sol = chain_split_multicast(f.topo, f.costs, f.request, opts);
  EXPECT_FALSE(sol.admitted);
  EXPECT_FALSE(sol.reject_reason.empty());
}

TEST(ChainSplit, AggregatedOverflowOnOneServerCaught) {
  // Both NFs individually fit server 1 (cap 110 >= 80 and >= 20) but not
  // together (100 total > ... fits: 100 <= 110). Use cap 90: NAT 20 ok,
  // IDS 80 ok individually; together 100 > 90. Server 3 removed.
  Fixture f;
  f.topo.servers = {1};
  f.topo.server_compute = {0, 90, 0, 0, 0};
  nfv::ResourceState state(f.topo);
  ChainSplitOptions opts;
  opts.resources = &state;
  const ChainSplitSolution sol = chain_split_multicast(f.topo, f.costs, f.request, opts);
  EXPECT_FALSE(sol.admitted);
}

TEST(ChainSplit, MulticastToManyDestinations) {
  util::Rng rng(42);
  const topo::Topology topo = topo::make_waxman(40, rng);
  const LinearCosts costs = random_costs(topo, rng);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {5, 13, 22, 31, 38};
  r.bandwidth_mbps = 120.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat,
                               nfv::NetworkFunction::kFirewall,
                               nfv::NetworkFunction::kIds});
  const ChainSplitSolution sol = chain_split_multicast(topo, costs, r);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(topo.graph, r, sol.tree, &error)) << error;
  EXPECT_EQ(sol.placements.size(), 3u);
  EXPECT_EQ(sol.tree.routes.size(), 5u);
}

TEST(ChainSplit, NeverCostsMoreThanConsolidatedOneServer) {
  // The split search space contains every consolidated single-server
  // solution of the same (walk to v, process all, tree from v) shape built
  // on the same KMB trees, so its cost is never higher than Appro_Multi
  // with K = 1 ... up to the zero-cost-correction discount that only
  // Appro_Multi enjoys. Compare conservatively within that margin.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    util::Rng rng(seed);
    const topo::Topology topo = topo::make_waxman(30, rng);
    const LinearCosts costs = random_costs(topo, rng);
    nfv::Request r;
    r.id = seed;
    r.bandwidth_mbps = 100.0;
    r.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall,
                                 nfv::NetworkFunction::kProxy});
    const auto picks = rng.sample_without_replacement(30, 4);
    r.source = static_cast<graph::VertexId>(picks[0]);
    for (std::size_t i = 1; i < picks.size(); ++i) {
      r.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
    }
    ApproMultiOptions k1;
    k1.max_servers = 1;
    const OfflineSolution consolidated = appro_multi(topo, costs, r, k1);
    const ChainSplitSolution split = chain_split_multicast(topo, costs, r);
    ASSERT_TRUE(consolidated.admitted);
    ASSERT_TRUE(split.admitted);
    EXPECT_LE(split.tree.cost, consolidated.tree.cost * 1.25 + 1e-9)
        << "seed " << seed;
  }
}

TEST(ChainSplit, HonorsDelayBound) {
  Fixture f;
  f.topo.link_delay_ms = {1.0, 1.0, 1.0, 1.0};
  f.request.max_delay_ms = 1.0;  // 4 hops + processing cannot fit
  const ChainSplitSolution tight = chain_split_multicast(f.topo, f.costs, f.request);
  EXPECT_FALSE(tight.admitted);
  f.request.max_delay_ms = 10.0;
  const ChainSplitSolution loose = chain_split_multicast(f.topo, f.costs, f.request);
  EXPECT_TRUE(loose.admitted);
}

TEST(ChainSplit, MalformedRequestThrows) {
  Fixture f;
  f.request.destinations.clear();
  EXPECT_THROW(chain_split_multicast(f.topo, f.costs, f.request),
               std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::core
