#include "util/combinatorics.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace nfvm::util {
namespace {

constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();

std::vector<std::vector<std::size_t>> enumerate(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<std::vector<std::size_t>> out;
  do {
    out.push_back(idx);
  } while (next_combination(idx, n));
  return out;
}

TEST(Combinatorics, EnumeratesAllCombinationsInLexOrder) {
  const auto combos = enumerate(5, 3);
  ASSERT_EQ(combos.size(), count_combinations(5, 3));
  EXPECT_EQ(combos.front(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(combos.back(), (std::vector<std::size_t>{2, 3, 4}));
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_LT(combos[i - 1], combos[i]);  // strictly increasing lex order
  }
  for (const auto& combo : combos) {
    for (std::size_t i = 1; i < combo.size(); ++i) {
      EXPECT_LT(combo[i - 1], combo[i]);
    }
    EXPECT_LT(combo.back(), 5u);
  }
}

TEST(Combinatorics, SingleElementAndFullCombination) {
  EXPECT_EQ(enumerate(4, 1).size(), 4u);
  EXPECT_EQ(enumerate(4, 4).size(), 1u);  // only {0,1,2,3}
}

TEST(Combinatorics, EmptyIndexVectorHasNoSuccessor) {
  std::vector<std::size_t> idx;
  EXPECT_FALSE(next_combination(idx, 7));
}

TEST(Combinatorics, CountCombinationsKnownValues) {
  EXPECT_EQ(count_combinations(0, 0), 1u);
  EXPECT_EQ(count_combinations(10, 0), 1u);
  EXPECT_EQ(count_combinations(10, 3), 120u);
  EXPECT_EQ(count_combinations(10, 7), 120u);  // symmetry
  EXPECT_EQ(count_combinations(52, 5), 2598960u);
  EXPECT_EQ(count_combinations(3, 5), 0u);  // k > n
}

TEST(Combinatorics, CountCombinationsSaturates) {
  EXPECT_EQ(count_combinations(1000, 500), kMax);
}

TEST(Combinatorics, CountCombinationsUpto) {
  // The Appro_Multi sweep sizes: 10 servers at K=4, 9 servers at K=4.
  EXPECT_EQ(count_combinations_upto(10, 4), 385u);
  EXPECT_EQ(count_combinations_upto(9, 4), 255u);
  EXPECT_EQ(count_combinations_upto(9, 6), 465u);
  // k past n stops at n: sum of all nonempty subsets.
  EXPECT_EQ(count_combinations_upto(4, 100), 15u);
  EXPECT_EQ(count_combinations_upto(0, 3), 0u);
  EXPECT_EQ(count_combinations_upto(1000, 500), kMax);
}

TEST(Combinatorics, SaturatingAdd) {
  EXPECT_EQ(saturating_add(2, 3), 5u);
  EXPECT_EQ(saturating_add(kMax, 1), kMax);
  EXPECT_EQ(saturating_add(kMax - 1, 1), kMax);
  EXPECT_EQ(saturating_add(kMax, kMax), kMax);
}

}  // namespace
}  // namespace nfvm::util
