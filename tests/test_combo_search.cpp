// Branch-and-bound combination search: exhaustive equivalence, beam
// monotonicity, pruning accounting and thread-count invariance.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/appro_multi.h"
#include "nfv/resources.h"
#include "sim/request_gen.h"
#include "topology/geant.h"
#include "topology/waxman.h"
#include "util/combinatorics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfvm::core {
namespace {

/// Restores the global pool to single-threaded when a test exits.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { util::ThreadPool::set_global_threads(1); }
};

struct Instance {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;
};

Instance random_instance(std::uint64_t seed, std::size_t n, std::size_t dests) {
  util::Rng rng(seed);
  Instance inst;
  inst.topo = topo::make_waxman(n, rng);
  inst.costs = random_costs(inst.topo, rng);
  inst.request.id = seed;
  inst.request.bandwidth_mbps = rng.uniform_real(50, 200);
  inst.request.chain = nfv::random_service_chain(rng, 1, 3);
  const auto picks = rng.sample_without_replacement(n, dests + 1);
  inst.request.source = static_cast<graph::VertexId>(picks[0]);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    inst.request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
  }
  return inst;
}

Instance geant_instance(std::uint64_t seed, std::size_t dests) {
  util::Rng rng(seed);
  Instance inst;
  inst.topo = topo::make_geant(rng);
  inst.costs = random_costs(inst.topo, rng);
  inst.request.id = seed;
  inst.request.bandwidth_mbps = rng.uniform_real(50, 200);
  inst.request.chain = nfv::random_service_chain(rng, 1, 3);
  const auto picks =
      rng.sample_without_replacement(inst.topo.num_switches(), dests + 1);
  inst.request.source = static_cast<graph::VertexId>(picks[0]);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    inst.request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
  }
  return inst;
}

/// The branch-and-bound result must match the legacy sweep EXACTLY —
/// bitwise-equal cost, same servers, same edge multiset, same reject
/// reason — because the search guarantees the same argmin combination.
void expect_same_decision(const OfflineSolution& legacy,
                          const OfflineSolution& bnb) {
  ASSERT_EQ(legacy.admitted, bnb.admitted);
  if (legacy.admitted) {
    EXPECT_EQ(legacy.tree.cost, bnb.tree.cost);
    EXPECT_EQ(legacy.tree.servers, bnb.tree.servers);
    EXPECT_EQ(legacy.tree.edge_uses, bnb.tree.edge_uses);
  } else {
    EXPECT_EQ(legacy.reject_reason, bnb.reject_reason);
  }
}

OfflineSolution run(const Instance& inst, const ApproMultiOptions& opts) {
  return appro_multi(inst.topo, inst.costs, inst.request, opts);
}

struct Case {
  std::uint64_t seed;
  std::size_t n;  // 0 = GEANT
  std::size_t dests;
  std::size_t k;
};

class BnbEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(BnbEquivalenceTest, MatchesExhaustiveSweepAtAnyThreadCount) {
  GlobalThreadsGuard guard;
  const Case& c = GetParam();
  const Instance inst =
      c.n == 0 ? geant_instance(c.seed, c.dests) : random_instance(c.seed, c.n, c.dests);

  for (const auto engine : {ApproMultiOptions::Engine::kReference,
                            ApproMultiOptions::Engine::kSharedDijkstra}) {
    ApproMultiOptions legacy_opts;
    legacy_opts.max_servers = c.k;
    legacy_opts.engine = engine;
    legacy_opts.search = ApproMultiOptions::Search::kLegacySweep;
    ApproMultiOptions bnb_opts = legacy_opts;
    bnb_opts.search = ApproMultiOptions::Search::kBranchAndBound;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      util::ThreadPool::set_global_threads(threads);
      const OfflineSolution legacy = run(inst, legacy_opts);
      const OfflineSolution bnb = run(inst, bnb_opts);
      expect_same_decision(legacy, bnb);
      EXPECT_EQ(legacy.combinations_pruned, 0u);
      EXPECT_LE(bnb.combinations_explored, legacy.combinations_explored);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BnbEquivalenceTest,
    ::testing::Values(Case{11, 40, 4, 3}, Case{12, 40, 6, 3},
                      Case{13, 35, 3, 4}, Case{14, 45, 5, 2},
                      Case{15, 40, 2, 3}, Case{16, 30, 8, 3},
                      // GEANT (n = 0): the paper's reference topology.
                      Case{17, 0, 4, 3}, Case{18, 0, 6, 4},
                      Case{19, 0, 3, 4}, Case{20, 0, 8, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(ComboSearch, RealizeFallthroughMatchesLegacyUnderDelayBound) {
  GlobalThreadsGuard guard;
  // Tight delay bounds knock out the cheapest candidates, exercising the
  // floor-based re-search against the legacy sorted fallthrough.
  for (std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    Instance inst = random_instance(seed, 40, 4);
    util::Rng delay_rng(seed + 1000);
    topo::assign_delays(inst.topo, delay_rng);
    for (const double delay_ms : {2.0, 5.0, 10.0, 40.0}) {
      inst.request.max_delay_ms = delay_ms;
      ApproMultiOptions legacy_opts;
      legacy_opts.max_servers = 3;
      legacy_opts.search = ApproMultiOptions::Search::kLegacySweep;
      ApproMultiOptions bnb_opts = legacy_opts;
      bnb_opts.search = ApproMultiOptions::Search::kBranchAndBound;
      expect_same_decision(run(inst, legacy_opts), run(inst, bnb_opts));
    }
  }
}

TEST(ComboSearch, RealizeFallthroughMatchesLegacyUnderCapacity) {
  GlobalThreadsGuard guard;
  const Instance inst = random_instance(41, 35, 4);
  nfv::ResourceState state_a(inst.topo);
  nfv::ResourceState state_b(inst.topo);
  for (graph::EdgeId e = 0; e < inst.topo.num_links(); e += 4) {
    nfv::Footprint fp;
    fp.bandwidth = {{e, 600.0}};
    state_a.allocate(fp);
    state_b.allocate(fp);
  }
  ApproMultiOptions legacy_opts;
  legacy_opts.max_servers = 3;
  legacy_opts.resources = &state_a;
  legacy_opts.search = ApproMultiOptions::Search::kLegacySweep;
  ApproMultiOptions bnb_opts = legacy_opts;
  bnb_opts.resources = &state_b;
  bnb_opts.search = ApproMultiOptions::Search::kBranchAndBound;
  expect_same_decision(run(inst, legacy_opts), run(inst, bnb_opts));
}

TEST(ComboSearch, PruningAccountingCoversTheCombinationSpace) {
  GlobalThreadsGuard guard;
  for (std::uint64_t seed : {51u, 52u, 53u}) {
    const Instance inst = random_instance(seed, 40, 4);
    // |V_S| via the K = 1 legacy sweep (it evaluates every single server).
    ApproMultiOptions probe;
    probe.max_servers = 1;
    probe.search = ApproMultiOptions::Search::kLegacySweep;
    const std::size_t n = run(inst, probe).combinations_explored;
    ASSERT_GT(n, 0u);

    ApproMultiOptions bnb_opts;
    bnb_opts.max_servers = 3;
    bnb_opts.search = ApproMultiOptions::Search::kBranchAndBound;
    const OfflineSolution sol = run(inst, bnb_opts);
    // Uncapacitated, no delay bound: the cheapest candidate realizes on the
    // first pass, so every combination was either evaluated or pruned.
    ASSERT_TRUE(sol.admitted);
    EXPECT_EQ(sol.combinations_explored + sol.combinations_pruned,
              util::count_combinations_upto(n, std::min<std::size_t>(3, n)));
    EXPECT_GE(sol.combinations_explored, 1u);
  }
}

TEST(ComboSearch, ExploredAndPrunedAreThreadCountInvariant) {
  GlobalThreadsGuard guard;
  const Instance inst = random_instance(61, 45, 5);
  ApproMultiOptions opts;
  opts.max_servers = 3;
  opts.engine = ApproMultiOptions::Engine::kSharedDijkstra;

  util::ThreadPool::set_global_threads(1);
  const OfflineSolution serial = run(inst, opts);
  util::ThreadPool::set_global_threads(4);
  const OfflineSolution parallel = run(inst, opts);

  EXPECT_EQ(serial.combinations_explored, parallel.combinations_explored);
  EXPECT_EQ(serial.combinations_pruned, parallel.combinations_pruned);
  expect_same_decision(serial, parallel);
}

TEST(ComboSearch, EvaluationBudgetIsRespectedInBothModes) {
  GlobalThreadsGuard guard;
  const Instance inst = random_instance(71, 40, 3);
  for (const auto search : {ApproMultiOptions::Search::kLegacySweep,
                            ApproMultiOptions::Search::kBranchAndBound}) {
    ApproMultiOptions opts;
    opts.max_servers = 3;
    opts.max_combinations = 5;
    opts.search = search;
    const OfflineSolution sol = run(inst, opts);
    EXPECT_LE(sol.combinations_explored, 5u);
    EXPECT_GE(sol.combinations_explored, 1u);
  }
}

TEST(BeamSearch, CostIsNonIncreasingInWidthAndExactAtFullPool) {
  GlobalThreadsGuard guard;
  for (std::uint64_t seed : {81u, 82u, 83u}) {
    const Instance inst = random_instance(seed, 40, 5);
    ApproMultiOptions exact_opts;
    exact_opts.max_servers = 3;
    const OfflineSolution exact = run(inst, exact_opts);
    ASSERT_TRUE(exact.admitted);

    // |V_S| from the K = 1 legacy sweep.
    ApproMultiOptions probe;
    probe.max_servers = 1;
    probe.search = ApproMultiOptions::Search::kLegacySweep;
    const std::size_t n = run(inst, probe).combinations_explored;

    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t m = 1; m <= n; ++m) {
      ApproMultiOptions beam_opts = exact_opts;
      beam_opts.beam_width = m;
      const OfflineSolution beamed = run(inst, beam_opts);
      ASSERT_TRUE(beamed.admitted) << "beam width " << m;
      // Nested pools: widening the beam only adds candidate combinations.
      EXPECT_LE(beamed.tree.cost, prev + 1e-12) << "beam width " << m;
      EXPECT_GE(beamed.tree.cost, exact.tree.cost - 1e-12) << "beam width " << m;
      prev = beamed.tree.cost;
      if (m == n) {
        // The full-width beam IS the exact search, bit for bit.
        EXPECT_EQ(beamed.tree.cost, exact.tree.cost);
        EXPECT_EQ(beamed.tree.servers, exact.tree.servers);
        EXPECT_EQ(beamed.tree.edge_uses, exact.tree.edge_uses);
      }
    }
  }
}

}  // namespace
}  // namespace nfvm::core
