#include "graph/components.h"

#include <gtest/gtest.h>

#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

TEST(Components, EmptyGraph) {
  Graph g;
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, IsolatedVertices) {
  Graph g(3);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_FALSE(is_connected(g));
  EXPECT_FALSE(c.same_component(0, 1));
}

TEST(Components, SingleComponent) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(c.same_component(0, 3));
}

TEST(Components, TwoComponents) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_TRUE(c.same_component(2, 4));
  EXPECT_FALSE(c.same_component(1, 2));
}

TEST(Components, LabelsAreDense) {
  Graph g(4);
  g.add_edge(1, 2, 1.0);
  const Components c = connected_components(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_LT(c.component[v], c.count);
}

TEST(Components, ReachableFromSource) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto reach = reachable_from(g, 0);
  EXPECT_EQ(reach.size(), 3u);
  EXPECT_EQ(reach[0], 0u);  // BFS starts at the source
}

TEST(Components, ReachableFromIsolated) {
  Graph g(2);
  const auto reach = reachable_from(g, 1);
  EXPECT_EQ(reach, (std::vector<VertexId>{1}));
}

TEST(Components, ReachableInvalidSourceThrows) {
  Graph g(2);
  EXPECT_THROW(reachable_from(g, 5), std::out_of_range);
}

TEST(Components, WaxmanGeneratorAlwaysConnected) {
  util::Rng rng(3);
  for (std::size_t n : {10u, 50u, 120u}) {
    const topo::Topology topo = topo::make_waxman(n, rng);
    EXPECT_TRUE(is_connected(topo.graph)) << "n=" << n;
  }
}

TEST(Components, SelfLoopDoesNotAffectComponents) {
  Graph g(2);
  g.add_edge(0, 0, 1.0);
  EXPECT_EQ(connected_components(g).count, 2u);
}

}  // namespace
}  // namespace nfvm::graph
