#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology small_topology() {
  topo::Topology t;
  t.name = "small";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {1, 3};
  t.link_bandwidth = {1000.0, 1000.0, 2000.0};
  t.server_compute = {0.0, 8000.0, 0.0, 4000.0};
  return t;
}

TEST(LinearCosts, UniformCosts) {
  const topo::Topology t = small_topology();
  const LinearCosts costs = uniform_costs(t, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(costs.edge_cost(0, 100.0), 200.0);
  EXPECT_DOUBLE_EQ(costs.server_cost(1, 300.0), 150.0);
}

TEST(LinearCosts, UniformRejectsNegative) {
  const topo::Topology t = small_topology();
  EXPECT_THROW(uniform_costs(t, -1.0, 0.5), std::invalid_argument);
}

TEST(LinearCosts, RandomCostsWithinRanges) {
  const topo::Topology t = small_topology();
  util::Rng rng(5);
  const LinearCosts costs = random_costs(t, rng);
  ASSERT_EQ(costs.link_unit_cost.size(), t.num_links());
  for (double c : costs.link_unit_cost) {
    EXPECT_GE(c, 0.01);
    EXPECT_LE(c, 0.10);
  }
  for (graph::VertexId v : t.servers) {
    EXPECT_GE(costs.server_unit_cost[v], 0.002);
    EXPECT_LE(costs.server_unit_cost[v], 0.010);
  }
  // Non-servers carry zero server cost.
  EXPECT_DOUBLE_EQ(costs.server_unit_cost[0], 0.0);
}

TEST(LinearCosts, RandomRejectsBadRanges) {
  const topo::Topology t = small_topology();
  util::Rng rng(5);
  RandomCostOptions opts;
  opts.min_link_cost = 1.0;
  opts.max_link_cost = 0.5;
  EXPECT_THROW(random_costs(t, rng, opts), std::invalid_argument);
}

TEST(ExponentialModel, RequiresBasesAboveOne) {
  EXPECT_THROW(ExponentialCostModel(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(ExponentialCostModel(2.0, 0.5), std::invalid_argument);
  EXPECT_NO_THROW(ExponentialCostModel(2.0, 2.0));
}

TEST(ExponentialModel, PaperDefaultIsTwiceV) {
  const ExponentialCostModel m = ExponentialCostModel::paper_default(50);
  EXPECT_DOUBLE_EQ(m.alpha(), 100.0);
  EXPECT_DOUBLE_EQ(m.beta(), 100.0);
}

TEST(ExponentialModel, ZeroUtilizationCostsNothing) {
  const topo::Topology t = small_topology();
  const nfv::ResourceState state(t);
  const ExponentialCostModel m(8.0, 8.0);
  EXPECT_DOUBLE_EQ(m.edge_weight(0, state), 0.0);
  EXPECT_DOUBLE_EQ(m.server_weight(1, state), 0.0);
  EXPECT_DOUBLE_EQ(m.edge_cost(0, state), 0.0);
  EXPECT_DOUBLE_EQ(m.server_cost(1, state), 0.0);
}

TEST(ExponentialModel, FullUtilizationMatchesEquation) {
  const topo::Topology t = small_topology();
  nfv::ResourceState state(t);
  nfv::Footprint fp;
  fp.bandwidth = {{0, 1000.0}};  // fill link 0
  fp.compute = {{1, 4000.0}};    // half of server 1
  state.allocate(fp);

  const ExponentialCostModel m(16.0, 16.0);
  // w_e = beta^1 - 1 = 15; c_e = B_e * 15.
  EXPECT_NEAR(m.edge_weight(0, state), 15.0, 1e-9);
  EXPECT_NEAR(m.edge_cost(0, state), 15000.0, 1e-6);
  // w_v = alpha^0.5 - 1 = 3.
  EXPECT_NEAR(m.server_weight(1, state), 3.0, 1e-9);
  EXPECT_NEAR(m.server_cost(1, state), 8000.0 * 3.0, 1e-6);
}

TEST(ExponentialModel, WeightIsMonotoneInUtilization) {
  const topo::Topology t = small_topology();
  nfv::ResourceState state(t);
  const ExponentialCostModel m = ExponentialCostModel::paper_default(4);
  double last = m.edge_weight(0, state);
  for (int i = 0; i < 9; ++i) {
    nfv::Footprint fp;
    fp.bandwidth = {{0, 100.0}};
    state.allocate(fp);
    const double now = m.edge_weight(0, state);
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(ExponentialModel, ConvexityRewardsBalancing) {
  // Splitting load over two identical links is cheaper (in total exponential
  // cost) than stacking it on one - the property motivating the model.
  const topo::Topology t = small_topology();
  const ExponentialCostModel m(100.0, 100.0);

  nfv::ResourceState stacked(t);
  nfv::Footprint fa;
  fa.bandwidth = {{0, 800.0}};
  stacked.allocate(fa);

  nfv::ResourceState balanced(t);
  nfv::Footprint fb;
  fb.bandwidth = {{0, 400.0}, {1, 400.0}};
  balanced.allocate(fb);

  const double cost_stacked = m.edge_cost(0, stacked) + m.edge_cost(1, stacked);
  const double cost_balanced = m.edge_cost(0, balanced) + m.edge_cost(1, balanced);
  EXPECT_LT(cost_balanced, cost_stacked);
}

}  // namespace
}  // namespace nfvm::core
