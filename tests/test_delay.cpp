#include "core/delay.h"

#include <gtest/gtest.h>

#include "core/appro_multi.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

/// Path 0-1-2-3 with known delays; server at 2.
struct Fixture {
  topo::Topology topo;
  nfv::Request request;

  Fixture() {
    topo.name = "delay-path";
    topo.graph = graph::Graph(4);
    topo.graph.add_edge(0, 1, 1.0);
    topo.graph.add_edge(1, 2, 1.0);
    topo.graph.add_edge(2, 3, 1.0);
    topo.servers = {2};
    topo.link_bandwidth = {1000, 1000, 1000};
    topo.server_compute = {0, 0, 8000, 0};
    topo.link_delay_ms = {1.0, 2.0, 4.0};

    request.id = 1;
    request.source = 0;
    request.destinations = {3};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});  // 0.05 ms
  }
};

TEST(Delay, RouteDelaySumsLinksAndChain) {
  Fixture f;
  DestinationRoute route;
  route.destination = 3;
  route.server = 2;
  route.walk = {0, 1, 2, 3};
  route.server_index = 2;
  EXPECT_NEAR(route_delay_ms(f.topo, f.request.chain, route), 1 + 2 + 4 + 0.05, 1e-9);
}

TEST(Delay, BackhaulWalkCountsLinksTwice) {
  Fixture f;
  DestinationRoute route;
  route.destination = 1;
  route.server = 2;
  route.walk = {0, 1, 2, 1};  // out to the server and back
  route.server_index = 2;
  EXPECT_NEAR(route_delay_ms(f.topo, f.request.chain, route), 1 + 2 + 2 + 0.05, 1e-9);
}

TEST(Delay, RequiresAssignedDelays) {
  Fixture f;
  f.topo.link_delay_ms.clear();
  DestinationRoute route;
  route.walk = {0, 1};
  EXPECT_THROW(route_delay_ms(f.topo, f.request.chain, route), std::invalid_argument);
}

TEST(Delay, NonExistentLinkRejected) {
  Fixture f;
  DestinationRoute route;
  route.walk = {0, 2};  // not adjacent
  EXPECT_THROW(route_delay_ms(f.topo, f.request.chain, route), std::invalid_argument);
}

TEST(Delay, WorstRouteDelayTakesMax) {
  Fixture f;
  PseudoMulticastTree tree;
  DestinationRoute near;
  near.destination = 1;
  near.server = 2;
  near.walk = {0, 1, 2, 1};
  near.server_index = 2;
  DestinationRoute far;
  far.destination = 3;
  far.server = 2;
  far.walk = {0, 1, 2, 3};
  far.server_index = 2;
  tree.routes = {near, far};
  EXPECT_NEAR(worst_route_delay_ms(f.topo, f.request, tree), 7.05, 1e-9);
}

TEST(Delay, UnboundedRequestAlwaysMeets) {
  Fixture f;
  PseudoMulticastTree tree;  // even an empty tree
  EXPECT_TRUE(meets_delay_bound(f.topo, f.request, tree));
}

TEST(Delay, BoundEnforced) {
  Fixture f;
  f.request.max_delay_ms = 5.0;
  PseudoMulticastTree tree;
  DestinationRoute route;
  route.destination = 3;
  route.server = 2;
  route.walk = {0, 1, 2, 3};
  route.server_index = 2;
  tree.routes = {route};
  EXPECT_FALSE(meets_delay_bound(f.topo, f.request, tree));  // 7.05 > 5
  f.request.max_delay_ms = 8.0;
  EXPECT_TRUE(meets_delay_bound(f.topo, f.request, tree));
}

TEST(DelayConstrained, ApproMultiRejectsWhenBoundImpossible) {
  Fixture f;
  const LinearCosts costs = uniform_costs(f.topo, 1.0, 0.01);
  f.request.max_delay_ms = 1.0;  // even reaching the server takes 3 ms
  const OfflineSolution sol = appro_multi(f.topo, costs, f.request);
  EXPECT_FALSE(sol.admitted);
  EXPECT_EQ(sol.reject_reason, "every candidate tree violates capacity or delay constraints");
}

TEST(DelayConstrained, ApproMultiAdmitsWithinBound) {
  Fixture f;
  const LinearCosts costs = uniform_costs(f.topo, 1.0, 0.01);
  f.request.max_delay_ms = 10.0;
  const OfflineSolution sol = appro_multi(f.topo, costs, f.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  EXPECT_TRUE(meets_delay_bound(f.topo, f.request, sol.tree));
}

TEST(DelayConstrained, ApproMultiPicksDelayFeasibleCandidate) {
  // Two routes 0 -> 3: a cheap-but-slow lower path via server 2 and a
  // pricier-but-fast upper path via server 1 (behind relay 4, so the
  // zero-cost source-edge correction cannot reroute around it). The
  // unconstrained optimum violates the bound; the constrained run must fall
  // back to the fast tree.
  topo::Topology t;
  t.graph = graph::Graph(5);
  t.graph.add_edge(0, 4, 1.0);  // e0 upper (fast)
  t.graph.add_edge(4, 1, 1.0);  // e1 upper
  t.graph.add_edge(1, 3, 1.0);  // e2 upper
  t.graph.add_edge(0, 2, 1.0);  // e3 lower (slow)
  t.graph.add_edge(2, 3, 1.0);  // e4 lower
  t.servers = {1, 2};
  t.link_bandwidth = {1000, 1000, 1000, 1000, 1000};
  t.server_compute = {0, 8000, 8000, 0, 0};
  t.link_delay_ms = {1.0, 1.0, 1.0, 10.0, 10.0};
  LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  costs.link_unit_cost = {1.9, 1.9, 1.9, 1.0, 1.0};  // lower path cheaper

  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const OfflineSolution unconstrained = appro_multi(t, costs, r);
  ASSERT_TRUE(unconstrained.admitted);
  EXPECT_EQ(unconstrained.tree.servers, (std::vector<graph::VertexId>{2}));

  r.max_delay_ms = 5.0;
  const OfflineSolution constrained = appro_multi(t, costs, r);
  ASSERT_TRUE(constrained.admitted) << constrained.reject_reason;
  EXPECT_EQ(constrained.tree.servers, (std::vector<graph::VertexId>{1}));
  EXPECT_TRUE(meets_delay_bound(t, r, constrained.tree));
  EXPECT_GT(constrained.tree.cost, unconstrained.tree.cost);
}

TEST(DelayConstrained, OnlineCpHonorsBound) {
  Fixture f;
  OnlineCp algo(f.topo);
  f.request.max_delay_ms = 1.0;
  const AdmissionDecision tight = algo.process(f.request);
  EXPECT_FALSE(tight.admitted);
  EXPECT_EQ(tight.reject_reason, "no candidate tree meets the delay bound");

  f.request.id = 2;
  f.request.max_delay_ms = 20.0;
  const AdmissionDecision loose = algo.process(f.request);
  EXPECT_TRUE(loose.admitted);
}

TEST(DelayConstrained, OnlineSpHonorsBound) {
  Fixture f;
  OnlineSp algo(f.topo);
  f.request.max_delay_ms = 1.0;
  EXPECT_FALSE(algo.process(f.request).admitted);
  f.request.id = 2;
  f.request.max_delay_ms = 20.0;
  EXPECT_TRUE(algo.process(f.request).admitted);
}

TEST(DelayConstrained, AssignDelaysHelper) {
  util::Rng rng(5);
  topo::Topology t = topo::make_waxman(30, rng);
  topo::assign_delays(t, rng, 0.5, 1.5);
  ASSERT_EQ(t.link_delay_ms.size(), t.num_links());
  for (double d : t.link_delay_ms) {
    EXPECT_GE(d, 0.5);
    EXPECT_LE(d, 1.5);
  }
  EXPECT_NO_THROW(topo::validate_topology(t));
  EXPECT_THROW(topo::assign_delays(t, rng, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(topo::assign_delays(t, rng, 2.0, 1.0), std::invalid_argument);
}

TEST(DelayConstrained, ValidateRejectsBadDelayVector) {
  Fixture f;
  f.topo.link_delay_ms.pop_back();
  EXPECT_THROW(topo::validate_topology(f.topo), std::logic_error);
  f.topo.link_delay_ms = {1.0, -1.0, 1.0};
  EXPECT_THROW(topo::validate_topology(f.topo), std::logic_error);
}

TEST(DelayConstrained, ChainProcessingDelaySums) {
  const nfv::ServiceChain chain({nfv::NetworkFunction::kNat,
                                 nfv::NetworkFunction::kIds});
  EXPECT_NEAR(chain.processing_delay_ms(), 0.05 + 0.50, 1e-12);
}

}  // namespace
}  // namespace nfvm::core
