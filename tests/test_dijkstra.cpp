#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

/// 0 -1- 1 -1- 2 and a direct heavy edge 0-2.
Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  return g;
}

TEST(Dijkstra, SourceDistanceZero) {
  const Graph g = triangle();
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_EQ(sp.parent[0], kInvalidVertex);
}

TEST(Dijkstra, PrefersMultiHopWhenCheaper) {
  const Graph g = triangle();
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  EXPECT_EQ(sp.parent[2], 1u);
}

TEST(Dijkstra, PathVerticesAndEdges) {
  const Graph g = triangle();
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_EQ(path_vertices(sp, 2), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(path_edges(sp, 2), (std::vector<EdgeId>{0, 1}));
}

TEST(Dijkstra, PathToSourceIsTrivial) {
  const Graph g = triangle();
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_EQ(path_vertices(sp, 0), (std::vector<VertexId>{0}));
  EXPECT_TRUE(path_edges(sp, 0).empty());
}

TEST(Dijkstra, UnreachableVertex) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_TRUE(path_vertices(sp, 2).empty());
  EXPECT_TRUE(path_edges(sp, 2).empty());
}

TEST(Dijkstra, InvalidSourceThrows) {
  Graph g(2);
  EXPECT_THROW(dijkstra(g, 7), std::out_of_range);
}

TEST(Dijkstra, ZeroWeightEdges) {
  Graph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 0.0);
  EXPECT_EQ(path_vertices(sp, 2).size(), 3u);
}

TEST(Dijkstra, ParallelEdgesUseCheapest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  const EdgeId cheap = g.add_edge(0, 1, 2.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);
  EXPECT_EQ(sp.parent_edge[1], cheap);
}

TEST(Dijkstra, FilteredExcludesEdges) {
  const Graph g = triangle();
  // Forbid the cheap 0-1 edge; best route to 2 becomes the direct edge.
  const ShortestPaths sp =
      dijkstra_filtered(g, 0, [](EdgeId e) { return e != 0; });
  EXPECT_DOUBLE_EQ(sp.dist[2], 5.0);
  EXPECT_EQ(path_vertices(sp, 2), (std::vector<VertexId>{0, 2}));
}

TEST(Dijkstra, FilteredCanDisconnect) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const ShortestPaths sp = dijkstra_filtered(g, 0, [](EdgeId) { return false; });
  EXPECT_FALSE(sp.reachable(1));
}

TEST(Dijkstra, ShortestDistanceHelper) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(shortest_distance(g, 0, 2), 2.0);
  EXPECT_THROW(shortest_distance(g, 0, 9), std::out_of_range);
}

TEST(Dijkstra, TriangleInequalityOnRandomGraph) {
  util::Rng rng(1234);
  const topo::Topology topo = topo::make_waxman(60, rng);
  const Graph& g = topo.graph;
  const ShortestPaths a = dijkstra(g, 0);
  const ShortestPaths b = dijkstra(g, 10);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // d(0, v) <= d(0, 10) + d(10, v)
    EXPECT_LE(a.dist[v], a.dist[10] + b.dist[v] + 1e-9);
  }
}

TEST(Dijkstra, PathWeightsMatchDistances) {
  util::Rng rng(99);
  const topo::Topology topo = topo::make_waxman(50, rng);
  const Graph& g = topo.graph;
  const ShortestPaths sp = dijkstra(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!sp.reachable(v)) continue;
    double sum = 0.0;
    for (EdgeId e : path_edges(sp, v)) sum += g.weight(e);
    EXPECT_NEAR(sum, sp.dist[v], 1e-9);
  }
}

TEST(Dijkstra, SymmetricDistancesOnUndirectedGraph) {
  util::Rng rng(7);
  const topo::Topology topo = topo::make_waxman(40, rng);
  const ShortestPaths from0 = dijkstra(topo.graph, 0);
  for (VertexId v : {VertexId{5}, VertexId{17}, VertexId{31}}) {
    const ShortestPaths back = dijkstra(topo.graph, v);
    EXPECT_NEAR(from0.dist[v], back.dist[0], 1e-9);
  }
}

}  // namespace
}  // namespace nfvm::graph
