#include "io/dot.h"

#include <gtest/gtest.h>

#include "core/appro_multi.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::io {
namespace {

topo::Topology small_topology() {
  topo::Topology t;
  t.name = "dot-test";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {2};
  t.link_bandwidth = {1000, 1000, 1000};
  t.server_compute = {0, 0, 8000, 0};
  return t;
}

TEST(Dot, BareTopologyStructure) {
  const topo::Topology t = small_topology();
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph \"dot-test\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
  // Server node is drawn as a box.
  EXPECT_NE(dot.find("n2 [label=\"2\", shape=box"), std::string::npos);
  EXPECT_EQ(dot.find("shape=box, shape=box"), std::string::npos);
  // Braces balance.
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, BandwidthLabelsOptIn) {
  const topo::Topology t = small_topology();
  DotOptions opts;
  opts.label_bandwidth = true;
  const std::string dot = to_dot(t, opts);
  EXPECT_NE(dot.find("label=\"1000\""), std::string::npos);
}

TEST(Dot, CoordinatesEmittedWhenPresent) {
  topo::Topology t = small_topology();
  t.coords = {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8}};
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("pos=\""), std::string::npos);
  DotOptions opts;
  opts.use_coordinates = false;
  EXPECT_EQ(to_dot(t, opts).find("pos=\""), std::string::npos);
}

TEST(Dot, TreeOverlayHighlightsRoles) {
  const topo::Topology t = small_topology();
  const core::LinearCosts costs = core::uniform_costs(t, 1.0, 0.01);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  const core::OfflineSolution sol = core::appro_multi(t, costs, r);
  ASSERT_TRUE(sol.admitted);

  const std::string dot = to_dot(t, r, sol.tree);
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);       // source
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);  // server
  EXPECT_NE(dot.find("fillcolor=palegreen"), std::string::npos);  // dest
  EXPECT_NE(dot.find("color=crimson"), std::string::npos);        // tree link
  EXPECT_NE(dot.find("x1"), std::string::npos);                   // multiplicity
}

TEST(Dot, TreeOverlayRejectsUnknownEdge) {
  const topo::Topology t = small_topology();
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  core::PseudoMulticastTree tree;
  tree.source = 0;
  tree.servers = {2};
  tree.edge_uses = {{99, 1}};
  EXPECT_THROW(to_dot(t, r, tree), std::invalid_argument);
}

TEST(Dot, GeneratedTopologyProducesParsableSizes) {
  util::Rng rng(3);
  const topo::Topology t = topo::make_waxman(25, rng);
  const std::string dot = to_dot(t);
  // one line per node + per edge + wrapper lines
  std::size_t lines = 0;
  for (char c : dot) lines += (c == '\n') ? 1 : 0;
  EXPECT_GE(lines, t.num_switches() + t.num_links());
}

}  // namespace
}  // namespace nfvm::io
