#include <gtest/gtest.h>

#include "core/online_cp.h"
#include "core/online_sp.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::sim {
namespace {

topo::Topology make_topo(std::uint64_t seed, std::size_t n = 40) {
  util::Rng rng(seed);
  return topo::make_waxman(n, rng);
}

TEST(PoissonWorkload, ArrivalsSortedAndPositiveDurations) {
  const topo::Topology t = make_topo(1);
  util::Rng rng(2);
  RequestGenerator gen(t, rng);
  const auto workload = make_poisson_workload(gen, rng, 100);
  ASSERT_EQ(workload.size(), 100u);
  double last = 0.0;
  for (const TimedRequest& tr : workload) {
    EXPECT_GE(tr.arrival_time, last);
    EXPECT_GT(tr.duration, 0.0);
    last = tr.arrival_time;
  }
}

TEST(PoissonWorkload, MeanInterarrivalMatchesRate) {
  const topo::Topology t = make_topo(3);
  util::Rng rng(4);
  RequestGenerator gen(t, rng);
  DynamicWorkloadOptions opts;
  opts.arrival_rate = 2.0;
  const auto workload = make_poisson_workload(gen, rng, 4000, opts);
  const double horizon = workload.back().arrival_time;
  EXPECT_NEAR(4000.0 / horizon, 2.0, 0.15);
}

TEST(PoissonWorkload, RejectsBadOptions) {
  const topo::Topology t = make_topo(5);
  util::Rng rng(6);
  RequestGenerator gen(t, rng);
  DynamicWorkloadOptions opts;
  opts.arrival_rate = 0.0;
  EXPECT_THROW(make_poisson_workload(gen, rng, 10, opts), std::invalid_argument);
  opts.arrival_rate = 1.0;
  opts.mean_duration = -1.0;
  EXPECT_THROW(make_poisson_workload(gen, rng, 10, opts), std::invalid_argument);
}

TEST(DynamicSimulator, CountsAddUp) {
  const topo::Topology t = make_topo(7);
  util::Rng rng(8);
  RequestGenerator gen(t, rng);
  const auto workload = make_poisson_workload(gen, rng, 120);
  core::OnlineCp algo(t);
  const DynamicMetrics m = run_online_dynamic(algo, workload);
  EXPECT_EQ(m.num_requests, 120u);
  EXPECT_EQ(m.num_admitted + m.num_rejected, 120u);
  EXPECT_EQ(m.admitted_costs.count(), m.num_admitted);
  EXPECT_LE(m.mean_active, static_cast<double>(m.peak_active));
}

TEST(DynamicSimulator, ResourcesFullyReleasedAtEnd) {
  const topo::Topology t = make_topo(9);
  util::Rng rng(10);
  RequestGenerator gen(t, rng);
  const auto workload = make_poisson_workload(gen, rng, 150);
  core::OnlineCp algo(t);
  run_online_dynamic(algo, workload);
  EXPECT_NEAR(algo.resources().total_allocated_bandwidth(), 0.0, 1e-6);
  EXPECT_NEAR(algo.resources().total_allocated_compute(), 0.0, 1e-6);
}

TEST(DynamicSimulator, UnsortedArrivalsRejected) {
  const topo::Topology t = make_topo(11);
  util::Rng rng(12);
  RequestGenerator gen(t, rng);
  auto workload = make_poisson_workload(gen, rng, 5);
  std::swap(workload[1], workload[3]);
  core::OnlineCp algo(t);
  EXPECT_THROW(run_online_dynamic(algo, workload), std::invalid_argument);
}

TEST(DynamicSimulator, DeparturesEnableMoreAdmissionsThanPermanentLoad) {
  // Short holding times recycle resources: the dynamic run must admit at
  // least as many requests as the permanent-allocation run of the same
  // arrivals (strictly more once the static run saturates).
  const topo::Topology t = make_topo(13);
  util::Rng rng(14);
  RequestGenerator gen(t, rng);
  DynamicWorkloadOptions opts;
  opts.arrival_rate = 5.0;
  opts.mean_duration = 2.0;  // ~10 concurrently active
  const auto workload = make_poisson_workload(gen, rng, 300, opts);

  core::OnlineCp dynamic_algo(t);
  const DynamicMetrics dynamic = run_online_dynamic(dynamic_algo, workload);

  std::vector<nfv::Request> plain;
  plain.reserve(workload.size());
  for (const TimedRequest& tr : workload) plain.push_back(tr.request);
  core::OnlineCp static_algo(t);
  const SimulationMetrics fixed = run_online(static_algo, plain);

  EXPECT_GE(dynamic.num_admitted, fixed.num_admitted);
  EXPECT_GT(dynamic.num_admitted, 250u);  // recycling keeps acceptance high
}

TEST(DynamicSimulator, PeakActiveBoundedByLittleLaw) {
  // With arrival rate lambda and mean holding 1/mu, the expected number in
  // system is lambda/mu; the peak should be the same order of magnitude.
  const topo::Topology t = make_topo(15, 60);
  util::Rng rng(16);
  RequestGenerator gen(t, rng);
  DynamicWorkloadOptions opts;
  opts.arrival_rate = 4.0;
  opts.mean_duration = 3.0;  // expected ~12 active
  const auto workload = make_poisson_workload(gen, rng, 400, opts);
  core::OnlineSp algo(t);
  const DynamicMetrics m = run_online_dynamic(algo, workload);
  EXPECT_GT(m.peak_active, 4u);
  EXPECT_LT(m.peak_active, 60u);
}

TEST(DynamicSimulator, EmptyWorkload) {
  const topo::Topology t = make_topo(17);
  core::OnlineCp algo(t);
  const DynamicMetrics m = run_online_dynamic(algo, std::vector<TimedRequest>{});
  EXPECT_EQ(m.num_requests, 0u);
  EXPECT_EQ(m.peak_active, 0u);
  EXPECT_DOUBLE_EQ(m.acceptance_ratio(), 0.0);
}

TEST(DynamicSimulator, Deterministic) {
  const topo::Topology t = make_topo(18);
  auto run = [&t]() {
    util::Rng rng(19);
    RequestGenerator gen(t, rng);
    const auto workload = make_poisson_workload(gen, rng, 100);
    core::OnlineCp algo(t);
    return run_online_dynamic(algo, workload);
  };
  const DynamicMetrics a = run();
  const DynamicMetrics b = run();
  EXPECT_EQ(a.num_admitted, b.num_admitted);
  EXPECT_EQ(a.peak_active, b.peak_active);
}

}  // namespace
}  // namespace nfvm::sim
