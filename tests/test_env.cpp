#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace nfvm::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("NFVM_TEST_VAR"); }
};

TEST_F(EnvTest, IntFallbackWhenUnset) {
  unsetenv("NFVM_TEST_VAR");
  EXPECT_EQ(env_int("NFVM_TEST_VAR", 42), 42);
}

TEST_F(EnvTest, IntParsesValue) {
  setenv("NFVM_TEST_VAR", "123", 1);
  EXPECT_EQ(env_int("NFVM_TEST_VAR", 42), 123);
}

TEST_F(EnvTest, IntParsesNegative) {
  setenv("NFVM_TEST_VAR", "-7", 1);
  EXPECT_EQ(env_int("NFVM_TEST_VAR", 42), -7);
}

TEST_F(EnvTest, IntFallbackOnGarbage) {
  setenv("NFVM_TEST_VAR", "12abc", 1);
  EXPECT_EQ(env_int("NFVM_TEST_VAR", 42), 42);
  setenv("NFVM_TEST_VAR", "", 1);
  EXPECT_EQ(env_int("NFVM_TEST_VAR", 42), 42);
}

TEST_F(EnvTest, DoubleParsesValue) {
  setenv("NFVM_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("NFVM_TEST_VAR", 1.0), 2.5);
}

TEST_F(EnvTest, DoubleFallbackOnGarbage) {
  setenv("NFVM_TEST_VAR", "x", 1);
  EXPECT_DOUBLE_EQ(env_double("NFVM_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, DoubleFallbackWhenUnset) {
  unsetenv("NFVM_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("NFVM_TEST_VAR", 0.25), 0.25);
}

}  // namespace
}  // namespace nfvm::util
