#include "core/exact_offline.h"

#include <gtest/gtest.h>

#include "core/alg_one_server.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

struct Instance {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;
};

Instance random_instance(std::uint64_t seed, std::size_t n, std::size_t dests) {
  util::Rng rng(seed);
  Instance inst;
  inst.topo = topo::make_waxman(n, rng);
  inst.costs = random_costs(inst.topo, rng);
  inst.request.id = seed;
  inst.request.bandwidth_mbps = rng.uniform_real(50, 200);
  inst.request.chain = nfv::random_service_chain(rng, 1, 3);
  const auto picks = rng.sample_without_replacement(n, dests + 1);
  inst.request.source = static_cast<graph::VertexId>(picks[0]);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    inst.request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
  }
  return inst;
}

TEST(ExactOneServer, ValidTree) {
  const Instance inst = random_instance(1, 16, 3);
  const OfflineSolution sol = exact_one_server(inst.topo, inst.costs, inst.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(inst.topo.graph, inst.request, sol.tree, &error))
      << error;
  EXPECT_EQ(sol.tree.servers.size(), 1u);
}

TEST(ExactOneServer, GuardTooManyDestinations) {
  Instance inst = random_instance(2, 30, 3);
  ExactOfflineOptions opts;
  opts.max_terminals = 3;  // |D| + 1 = 4 > 3
  EXPECT_THROW(exact_one_server(inst.topo, inst.costs, inst.request, opts),
               std::invalid_argument);
}

TEST(ExactOneServer, LowerBoundsEveryOneServerHeuristic) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    const Instance inst = random_instance(seed, 18, 3);
    const OfflineSolution exact = exact_one_server(inst.topo, inst.costs, inst.request);
    const OfflineSolution base = alg_one_server(inst.topo, inst.costs, inst.request);
    ASSERT_TRUE(exact.admitted);
    ASSERT_TRUE(base.admitted);
    EXPECT_LE(exact.tree.cost, base.tree.cost + 1e-9) << "seed " << seed;
  }
}

TEST(ExactAuxiliary, ApproMultiWithinTwiceExact) {
  // The KMB guarantee, verified within the auxiliary formulation itself:
  // Appro_Multi's reported cost <= 2 x the exact auxiliary optimum.
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    const Instance inst = random_instance(seed, 16, 3);
    for (std::size_t k = 1; k <= 2; ++k) {
      ExactOfflineOptions eopts;
      eopts.max_servers = k;
      const OfflineSolution exact =
          exact_auxiliary(inst.topo, inst.costs, inst.request, eopts);
      ApproMultiOptions aopts;
      aopts.max_servers = k;
      const OfflineSolution appro =
          appro_multi(inst.topo, inst.costs, inst.request, aopts);
      ASSERT_TRUE(exact.admitted);
      ASSERT_TRUE(appro.admitted);
      EXPECT_GE(appro.tree.cost + 1e-9, exact.tree.cost)
          << "seed " << seed << " K " << k;
      EXPECT_LE(appro.tree.cost, 2.0 * exact.tree.cost + 1e-9)
          << "seed " << seed << " K " << k;
    }
  }
}

TEST(ExactAuxiliary, NonIncreasingInK) {
  const Instance inst = random_instance(31, 15, 3);
  double last = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 3; ++k) {
    ExactOfflineOptions opts;
    opts.max_servers = k;
    const OfflineSolution sol =
        exact_auxiliary(inst.topo, inst.costs, inst.request, opts);
    ASSERT_TRUE(sol.admitted);
    EXPECT_LE(sol.tree.cost, last + 1e-9);
    last = sol.tree.cost;
  }
}

TEST(ExactAuxiliary, AtMostOneServerBelowTrueOptimum) {
  // The zero-cost source-edge correction can only lower the auxiliary
  // optimum relative to the true one-server optimum.
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    const Instance inst = random_instance(seed, 14, 2);
    const OfflineSolution true_opt =
        exact_one_server(inst.topo, inst.costs, inst.request);
    ExactOfflineOptions opts;
    opts.max_servers = 1;
    const OfflineSolution aux_opt =
        exact_auxiliary(inst.topo, inst.costs, inst.request, opts);
    ASSERT_TRUE(true_opt.admitted);
    ASSERT_TRUE(aux_opt.admitted);
    EXPECT_LE(aux_opt.tree.cost, true_opt.tree.cost + 1e-9) << "seed " << seed;
  }
}

TEST(ExactAuxiliary, ValidTreeAndServerBound) {
  const Instance inst = random_instance(51, 15, 3);
  ExactOfflineOptions opts;
  opts.max_servers = 2;
  const OfflineSolution sol = exact_auxiliary(inst.topo, inst.costs, inst.request, opts);
  ASSERT_TRUE(sol.admitted);
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(inst.topo.graph, inst.request, sol.tree, &error))
      << error;
  EXPECT_LE(sol.tree.servers.size(), 2u);
}

TEST(ExactAuxiliary, GuardsChecked) {
  Instance inst = random_instance(61, 14, 2);
  ExactOfflineOptions opts;
  opts.max_servers = 0;
  EXPECT_THROW(exact_auxiliary(inst.topo, inst.costs, inst.request, opts),
               std::invalid_argument);
  opts.max_servers = 1;
  opts.max_terminals = 2;
  EXPECT_THROW(exact_auxiliary(inst.topo, inst.costs, inst.request, opts),
               std::invalid_argument);
}

TEST(ExactOffline, CapacitatedPruningRespected) {
  Instance inst = random_instance(71, 14, 2);
  nfv::ResourceState state(inst.topo);
  // Exhaust every server except one.
  for (std::size_t i = 0; i + 1 < inst.topo.servers.size(); ++i) {
    nfv::Footprint fp;
    const graph::VertexId v = inst.topo.servers[i];
    fp.compute = {{v, state.residual_compute(v)}};
    state.allocate(fp);
  }
  ExactOfflineOptions opts;
  opts.resources = &state;
  const OfflineSolution sol = exact_one_server(inst.topo, inst.costs, inst.request, opts);
  if (sol.admitted) {
    EXPECT_EQ(sol.tree.servers[0], inst.topo.servers.back());
  }
}

}  // namespace
}  // namespace nfvm::core
