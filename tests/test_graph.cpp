#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nfvm::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_vertex(0));
  EXPECT_FALSE(g.has_edge(0));
}

TEST(Graph, ConstructWithVertices) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_TRUE(g.has_vertex(4));
  EXPECT_FALSE(g.has_vertex(5));
}

TEST(Graph, AddVertexReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_vertex(), 0u);
  EXPECT_EQ(g.add_vertex(), 1u);
  EXPECT_EQ(g.add_vertices(3), 2u);
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(Graph, AddEdgeAndInspect) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 1.5);
  EXPECT_EQ(e, 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 2u);
  EXPECT_DOUBLE_EQ(g.weight(e), 1.5);
}

TEST(Graph, AdjacencyBothDirections) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.0);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].neighbor, 1u);
  EXPECT_EQ(g.neighbors(0)[0].edge, e);
  EXPECT_EQ(g.neighbors(1)[0].neighbor, 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, SelfLoopCountsTwiceInDegree) {
  Graph g(2);
  g.add_edge(0, 0, 1.0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);  // single adjacency record
}

TEST(Graph, InvalidEndpointsThrow) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(5, 0, 1.0), std::out_of_range);
}

TEST(Graph, NegativeOrNonFiniteWeightsRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, std::nan("")), std::invalid_argument);
}

TEST(Graph, SetWeight) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.set_weight(e, 3.0);
  EXPECT_DOUBLE_EQ(g.weight(e), 3.0);
  EXPECT_THROW(g.set_weight(e, -2.0), std::invalid_argument);
  EXPECT_THROW(g.set_weight(99, 1.0), std::out_of_range);
}

TEST(Graph, ZeroWeightAllowed) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(g.weight(e), 0.0);
}

TEST(Graph, OtherEndpoint) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.other_endpoint(e, 0), 1u);
  EXPECT_EQ(g.other_endpoint(e, 1), 0u);
  EXPECT_THROW(g.other_endpoint(e, 2), std::invalid_argument);
}

TEST(Graph, OtherEndpointSelfLoop) {
  Graph g(1);
  const EdgeId e = g.add_edge(0, 0, 1.0);
  EXPECT_EQ(g.other_endpoint(e, 0), 0u);
}

TEST(Graph, FindEdge) {
  Graph g(4);
  const EdgeId e = g.add_edge(1, 3, 1.0);
  EXPECT_EQ(g.find_edge(1, 3), std::optional<EdgeId>(e));
  EXPECT_EQ(g.find_edge(3, 1), std::optional<EdgeId>(e));
  EXPECT_EQ(g.find_edge(0, 1), std::nullopt);
}

TEST(Graph, TotalWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(Graph, EdgesSpanIndexedById) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[1].weight, 2.0);
}

TEST(Graph, InvalidEdgeAccessThrows) {
  Graph g(2);
  EXPECT_THROW(g.edge(0), std::out_of_range);
  EXPECT_THROW(g.neighbors(5), std::out_of_range);
  EXPECT_THROW(g.degree(5), std::out_of_range);
}

}  // namespace
}  // namespace nfvm::graph
