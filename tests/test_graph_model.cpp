// Model-based fuzzing of the Graph class: random operation sequences are
// mirrored against a trivially correct adjacency-matrix reference and all
// observable queries must agree.
#include <gtest/gtest.h>

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

/// Reference implementation: dense matrix of multiplicity + edge list.
class ReferenceGraph {
 public:
  std::size_t add_vertex() {
    for (auto& row : matrix_) row.push_back(0);
    matrix_.emplace_back(matrix_.size() + 1, 0);
    return matrix_.size() - 1;
  }

  void add_edge(std::size_t u, std::size_t v, double w) {
    edges_.push_back({u, v, w});
    ++matrix_[u][v];
    if (u != v) ++matrix_[v][u];
  }

  std::size_t num_vertices() const { return matrix_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  std::size_t degree(std::size_t v) const {
    std::size_t deg = 0;
    for (std::size_t u = 0; u < matrix_.size(); ++u) {
      deg += static_cast<std::size_t>(matrix_[v][u]);
      if (u == v) deg += static_cast<std::size_t>(matrix_[v][u]);  // loops x2
    }
    return deg;
  }

  int multiplicity(std::size_t u, std::size_t v) const { return matrix_[u][v]; }

  double total_weight() const {
    double sum = 0;
    for (const auto& e : edges_) sum += e.w;
    return sum;
  }

  struct E {
    std::size_t u, v;
    double w;
  };
  const std::vector<E>& edges() const { return edges_; }

 private:
  std::vector<std::vector<int>> matrix_;
  std::vector<E> edges_;
};

class GraphModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphModelTest, RandomOperationSequenceAgrees) {
  util::Rng rng(GetParam());
  Graph g;
  ReferenceGraph ref;

  for (int step = 0; step < 600; ++step) {
    const std::uint64_t op = rng.next_below(10);
    if (op < 3 || g.num_vertices() == 0) {
      const VertexId a = g.add_vertex();
      const std::size_t b = ref.add_vertex();
      ASSERT_EQ(a, b);
    } else {
      const auto u = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const double w = rng.uniform_real(0.0, 5.0);
      g.add_edge(u, v, w);
      ref.add_edge(u, v, w);
    }
  }

  ASSERT_EQ(g.num_vertices(), ref.num_vertices());
  ASSERT_EQ(g.num_edges(), ref.num_edges());
  EXPECT_NEAR(g.total_weight(), ref.total_weight(), 1e-9);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), ref.degree(v)) << "vertex " << v;
  }

  // Edge records match the reference list, id by id.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    EXPECT_EQ(ed.u, ref.edges()[e].u);
    EXPECT_EQ(ed.v, ref.edges()[e].v);
    EXPECT_DOUBLE_EQ(ed.weight, ref.edges()[e].w);
  }

  // Adjacency multiplicities agree with the matrix.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    std::vector<int> count(g.num_vertices(), 0);
    for (const Adjacency& adj : g.neighbors(u)) ++count[adj.neighbor];
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u == v) continue;  // self-loops appear once per adjacency list
      EXPECT_EQ(count[v], ref.multiplicity(u, v)) << u << "-" << v;
    }
  }

  // find_edge agrees with the matrix on existence.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(g.find_edge(u, v).has_value(), ref.multiplicity(u, v) > 0)
          << u << "-" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphModelTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace nfvm::graph
