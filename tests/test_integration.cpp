// End-to-end scenarios exercising the whole stack: topology generation,
// request generation, offline cost comparison, capacitated admission, and
// online simulation on the real-like topologies.
#include <gtest/gtest.h>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "core/chain_split.h"
#include "core/delay.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm {
namespace {

TEST(Integration, OfflineComparisonOnWaxman) {
  // Appro_Multi (K=3) should on average beat Alg_One_Server on operational
  // cost - the paper's Fig. 5 headline. Averaged over a batch to avoid
  // per-instance noise.
  util::Rng rng(1001);
  const topo::Topology topo = topo::make_waxman(60, rng);
  const core::LinearCosts costs = core::random_costs(topo, rng);
  sim::RequestGenerator gen(topo, rng);

  double sum_appro = 0.0;
  double sum_one = 0.0;
  int counted = 0;
  for (int i = 0; i < 20; ++i) {
    const nfv::Request r = gen.next();
    const core::OfflineSolution a = core::appro_multi(topo, costs, r);
    const core::OfflineSolution b = core::alg_one_server(topo, costs, r);
    ASSERT_TRUE(a.admitted);
    ASSERT_TRUE(b.admitted);
    // Per-instance sanity: both valid.
    std::string error;
    ASSERT_TRUE(core::validate_pseudo_tree(topo.graph, r, a.tree, &error)) << error;
    ASSERT_TRUE(core::validate_pseudo_tree(topo.graph, r, b.tree, &error)) << error;
    sum_appro += a.tree.cost;
    sum_one += b.tree.cost;
    ++counted;
  }
  ASSERT_EQ(counted, 20);
  EXPECT_LE(sum_appro, sum_one * 1.02)
      << "Appro_Multi should not lose to the one-server baseline on average";
}

TEST(Integration, OnlineCpBeatsSpOnSaturatedWaxman) {
  // The paper's Fig. 8: Online_CP admits more than SP under load.
  // We run a long sequence so resources saturate.
  util::Rng topo_rng(2002);
  const topo::Topology topo = topo::make_waxman(50, topo_rng);

  auto run = [&topo](core::OnlineAlgorithm& algo) {
    util::Rng rng(42);
    sim::RequestGenerator gen(topo, rng);
    return sim::run_online(algo, gen.sequence(250));
  };
  core::OnlineCp cp(topo);
  core::OnlineSp sp(topo);
  const sim::SimulationMetrics mcp = run(cp);
  const sim::SimulationMetrics msp = run(sp);
  EXPECT_GT(mcp.num_admitted, 0u);
  EXPECT_GT(msp.num_admitted, 0u);
  // CP should not be dramatically worse; the paper reports CP >= SP. Allow
  // slack for a single topology draw but catch regressions.
  EXPECT_GE(mcp.num_admitted * 10, msp.num_admitted * 7);
}

TEST(Integration, GeantOfflineScenario) {
  util::Rng rng(3003);
  const topo::Topology topo = topo::make_geant(rng);
  const core::LinearCosts costs = core::random_costs(topo, rng);

  nfv::Request r;
  r.id = 1;
  r.source = 0;  // Amsterdam
  r.destinations = {1, 13, 22, 29, 31};  // Athens, Istanbul, Moscow, Rome, Stockholm
  r.bandwidth_mbps = 150.0;
  r.chain = nfv::ServiceChain(
      {nfv::NetworkFunction::kFirewall, nfv::NetworkFunction::kIds});

  const core::OfflineSolution sol = core::appro_multi(topo, costs, r);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(core::validate_pseudo_tree(topo.graph, r, sol.tree, &error)) << error;
  EXPECT_LE(sol.tree.servers.size(), 3u);
}

TEST(Integration, As1755OnlineScenario) {
  util::Rng rng(4004);
  const topo::Topology topo = topo::make_as1755(rng);
  core::OnlineCp algo(topo);
  sim::RequestGenerator gen(topo, rng);
  const sim::SimulationMetrics m = sim::run_online(algo, gen.sequence(100));
  EXPECT_GT(m.num_admitted, 10u);
  EXPECT_EQ(m.num_admitted + m.num_rejected, 100u);
}

TEST(Integration, CapacitatedOfflineSequenceConservesResources) {
  // Admit a stream of requests through Appro_Multi_Cap, charging each
  // footprint; residuals must never go negative and every admitted tree
  // must have been feasible at admission time.
  util::Rng rng(5005);
  const topo::Topology topo = topo::make_waxman(40, rng);
  const core::LinearCosts costs = core::random_costs(topo, rng);
  nfv::ResourceState state(topo);
  sim::RequestGenerator gen(topo, rng);

  std::size_t admitted = 0;
  for (int i = 0; i < 120; ++i) {
    const nfv::Request r = gen.next();
    core::ApproMultiOptions opts;
    opts.resources = &state;
    const core::OfflineSolution sol = core::appro_multi(topo, costs, r, opts);
    if (!sol.admitted) continue;
    const nfv::Footprint fp = sol.tree.footprint(r);
    ASSERT_TRUE(state.can_allocate(fp)) << "algorithm returned infeasible tree";
    state.allocate(fp);
    ++admitted;
  }
  EXPECT_GT(admitted, 0u);
  for (graph::EdgeId e = 0; e < topo.num_links(); ++e) {
    EXPECT_GE(state.residual_bandwidth(e), -1e-6);
  }
  for (graph::VertexId v : topo.servers) {
    EXPECT_GE(state.residual_compute(v), -1e-6);
  }
}

TEST(Integration, MixedWorkloadOnAs4755) {
  util::Rng rng(6006);
  const topo::Topology topo = topo::make_as4755(rng);
  core::OnlineSp sp(topo);
  core::OnlineCp cp(topo);
  sim::RequestGenerator gen(topo, rng);
  const auto requests = gen.sequence(120);
  const sim::SimulationMetrics a = sim::run_online(cp, requests);
  const sim::SimulationMetrics b = sim::run_online(sp, requests);
  EXPECT_GT(a.num_admitted, 0u);
  EXPECT_GT(b.num_admitted, 0u);
}

TEST(Integration, OnlineThroughputGrowsWithSequenceLength) {
  // Fig. 9 shape: admitted count is non-decreasing in the request count.
  util::Rng topo_rng(7007);
  const topo::Topology topo = topo::make_geant(topo_rng);
  std::size_t last = 0;
  for (std::size_t count : {30u, 60u, 90u}) {
    util::Rng rng(77);
    sim::RequestGenerator gen(topo, rng);
    core::OnlineCp algo(topo);
    const sim::SimulationMetrics m = sim::run_online(algo, gen.sequence(count));
    EXPECT_GE(m.num_admitted, last);
    last = m.num_admitted;
  }
}

TEST(Integration, AllConstraintsTogetherOnlineRun) {
  // Bandwidth + compute + forwarding tables + delay bounds, all active at
  // once, through the dynamic simulator: every admitted tree must satisfy
  // every constraint and all resources must return to idle at the end.
  util::Rng rng(8008);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  topo::Topology topo = topo::make_waxman(60, rng, wo);
  topo::assign_delays(topo, rng, 0.3, 1.5);
  topo::assign_table_capacities(topo, 25.0);

  util::Rng workload(42);
  sim::RequestGenerator gen(topo, workload);
  util::Rng times(43);
  auto timed = sim::make_poisson_workload(gen, times, 200);
  for (sim::TimedRequest& tr : timed) tr.request.max_delay_ms = 15.0;

  core::OnlineCp algo(topo);
  const sim::DynamicMetrics m = sim::run_online_dynamic(algo, timed);
  EXPECT_GT(m.num_admitted, 0u);
  EXPECT_NEAR(algo.resources().total_allocated_bandwidth(), 0.0, 1e-6);
  EXPECT_NEAR(algo.resources().total_allocated_compute(), 0.0, 1e-6);
  for (graph::VertexId v = 0; v < topo.num_switches(); ++v) {
    EXPECT_NEAR(algo.resources().residual_table_entries(v), 25.0, 1e-9);
  }
}

TEST(Integration, AllConstraintsAdmittedTreesSatisfyEverything) {
  util::Rng rng(8009);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  topo::Topology topo = topo::make_waxman(50, rng, wo);
  topo::assign_delays(topo, rng, 0.3, 1.5);
  topo::assign_table_capacities(topo, 30.0);

  util::Rng workload(77);
  sim::RequestGenerator gen(topo, workload);
  core::OnlineCp algo(topo);
  std::size_t admitted = 0;
  for (int i = 0; i < 120; ++i) {
    nfv::Request r = gen.next();
    r.max_delay_ms = 12.0;
    const core::AdmissionDecision d = algo.process(r);
    if (!d.admitted) continue;
    ++admitted;
    std::string error;
    ASSERT_TRUE(core::validate_pseudo_tree(topo.graph, r, d.tree, &error)) << error;
    EXPECT_TRUE(core::meets_delay_bound(topo, r, d.tree));
  }
  EXPECT_GT(admitted, 0u);
  // Tables never over-consumed.
  for (graph::VertexId v = 0; v < topo.num_switches(); ++v) {
    EXPECT_GE(algo.resources().residual_table_entries(v), -1e-9);
  }
}

TEST(Integration, ChainSplitStreamWithAllConstraints) {
  util::Rng rng(8010);
  topo::Topology topo = topo::make_waxman(40, rng);
  topo::assign_table_capacities(topo, 20.0);
  const core::LinearCosts costs = core::random_costs(topo, rng);
  nfv::ResourceState state(topo);
  sim::RequestGenerator gen(topo, rng);

  std::size_t admitted = 0;
  for (int i = 0; i < 60; ++i) {
    const nfv::Request r = gen.next();
    core::ChainSplitOptions opts;
    opts.resources = &state;
    const core::ChainSplitSolution sol =
        core::chain_split_multicast(topo, costs, r, opts);
    if (!sol.admitted) continue;
    ASSERT_TRUE(state.can_allocate(sol.footprint));
    state.allocate(sol.footprint);
    ++admitted;
  }
  EXPECT_GT(admitted, 0u);
  for (graph::VertexId v = 0; v < topo.num_switches(); ++v) {
    EXPECT_GE(state.residual_table_entries(v), -1e-9);
  }
}

}  // namespace
}  // namespace nfvm
