#include "graph/mst.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/components.h"
#include "graph/union_find.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

TEST(Mst, SimpleTriangle) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const MstResult mst = kruskal_mst(g);
  EXPECT_TRUE(mst.spanning);
  EXPECT_EQ(mst.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(mst.weight, 3.0);
  EXPECT_TRUE(std::find(mst.edges.begin(), mst.edges.end(), 2u) == mst.edges.end());
}

TEST(Mst, DisconnectedGraphIsForest) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const MstResult mst = kruskal_mst(g);
  EXPECT_FALSE(mst.spanning);
  EXPECT_EQ(mst.edges.size(), 2u);
}

TEST(Mst, SingleVertexSpans) {
  Graph g(1);
  const MstResult mst = kruskal_mst(g);
  EXPECT_TRUE(mst.spanning);
  EXPECT_TRUE(mst.edges.empty());
  EXPECT_DOUBLE_EQ(mst.weight, 0.0);
}

TEST(Mst, ParallelEdgesPickCheapest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  const EdgeId cheap = g.add_edge(0, 1, 1.0);
  const MstResult mst = kruskal_mst(g);
  ASSERT_EQ(mst.edges.size(), 1u);
  EXPECT_EQ(mst.edges[0], cheap);
}

TEST(Mst, TieBreaksByEdgeIdDeterministically) {
  Graph g(2);
  const EdgeId first = g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  const MstResult mst = kruskal_mst(g);
  ASSERT_EQ(mst.edges.size(), 1u);
  EXPECT_EQ(mst.edges[0], first);
}

TEST(Mst, SubsetRestrictsCandidates) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const EdgeId e02 = g.add_edge(0, 2, 3.0);
  const std::vector<EdgeId> subset{e01, e02};
  const MstResult mst = kruskal_mst_subset(g, subset);
  EXPECT_TRUE(mst.spanning);  // touched vertices {0,1,2} are connected
  EXPECT_DOUBLE_EQ(mst.weight, 4.0);
}

TEST(Mst, SubsetSpanningIgnoresUntouchedVertices) {
  Graph g(5);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  const MstResult mst = kruskal_mst_subset(g, std::vector<EdgeId>{e01});
  EXPECT_TRUE(mst.spanning);  // only {0,1} are touched
}

TEST(Mst, SubsetDisconnectedTouchedVertices) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(2, 3, 1.0);
  const MstResult mst = kruskal_mst_subset(g, std::vector<EdgeId>{a, b});
  EXPECT_FALSE(mst.spanning);
}

TEST(Mst, EmptySubset) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const MstResult mst = kruskal_mst_subset(g, std::vector<EdgeId>{});
  EXPECT_TRUE(mst.edges.empty());
  EXPECT_FALSE(mst.spanning);  // no touched vertices
}

TEST(Mst, SpanningTreeHasNMinusOneEdges) {
  util::Rng rng(2024);
  const topo::Topology topo = topo::make_waxman(80, rng);
  const MstResult mst = kruskal_mst(topo.graph);
  EXPECT_TRUE(mst.spanning);
  EXPECT_EQ(mst.edges.size(), topo.graph.num_vertices() - 1);
}

TEST(Mst, CutPropertyHolds) {
  // Property: for every MST edge (u,v), removing it splits the tree and the
  // edge is a minimum-weight crossing edge of that cut.
  util::Rng rng(5);
  Graph g(12);
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) {
      if (rng.bernoulli(0.5)) g.add_edge(u, v, rng.uniform_real(1.0, 10.0));
    }
  }
  if (!is_connected(g)) GTEST_SKIP() << "random draw disconnected";
  const MstResult mst = kruskal_mst(g);
  for (EdgeId removed : mst.edges) {
    // Components of the tree minus `removed`.
    std::vector<EdgeId> rest;
    for (EdgeId e : mst.edges) {
      if (e != removed) rest.push_back(e);
    }
    UnionFind uf(g.num_vertices());
    for (EdgeId e : rest) uf.unite(g.edge(e).u, g.edge(e).v);
    const double w = g.weight(removed);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      if (uf.find(ed.u) != uf.find(ed.v)) {
        EXPECT_GE(ed.weight + 1e-12, w) << "edge " << e << " violates cut property";
      }
    }
  }
}

}  // namespace
}  // namespace nfvm::graph
