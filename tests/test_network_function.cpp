#include "nfv/network_function.h"

#include <gtest/gtest.h>

#include <set>

namespace nfvm::nfv {
namespace {

TEST(NetworkFunction, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (NetworkFunction nf : kAllNetworkFunctions) names.insert(to_string(nf));
  EXPECT_EQ(names.size(), kNumNetworkFunctions);
}

TEST(NetworkFunction, KnownNames) {
  EXPECT_EQ(to_string(NetworkFunction::kNat), "NAT");
  EXPECT_EQ(to_string(NetworkFunction::kFirewall), "Firewall");
  EXPECT_EQ(to_string(NetworkFunction::kIds), "IDS");
  EXPECT_EQ(to_string(NetworkFunction::kProxy), "Proxy");
  EXPECT_EQ(to_string(NetworkFunction::kLoadBalancer), "LoadBalancer");
}

TEST(NetworkFunction, DemandsPositive) {
  for (NetworkFunction nf : kAllNetworkFunctions) {
    EXPECT_GT(compute_demand_per_100mbps(nf), 0.0);
  }
}

TEST(NetworkFunction, RelativeOrderingFollowsMeasurements) {
  // NAT cheapest, IDS most expensive (ClickOS-era orderings).
  const double nat = compute_demand_per_100mbps(NetworkFunction::kNat);
  const double ids = compute_demand_per_100mbps(NetworkFunction::kIds);
  for (NetworkFunction nf : kAllNetworkFunctions) {
    const double d = compute_demand_per_100mbps(nf);
    EXPECT_GE(d, nat);
    EXPECT_LE(d, ids);
  }
}

TEST(NetworkFunction, InvalidEnumThrows) {
  EXPECT_THROW(to_string(static_cast<NetworkFunction>(99)), std::invalid_argument);
  EXPECT_THROW(compute_demand_per_100mbps(static_cast<NetworkFunction>(99)),
               std::invalid_argument);
}

TEST(NetworkFunction, RandomDrawCoversAll) {
  util::Rng rng(3);
  std::set<NetworkFunction> seen;
  for (int i = 0; i < 200; ++i) seen.insert(random_network_function(rng));
  EXPECT_EQ(seen.size(), kNumNetworkFunctions);
}

}  // namespace
}  // namespace nfvm::nfv
