// Run-bundle building blocks: manifest writing, build provenance, and the
// background timeseries sampler.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/run_info.h"
#include "obs/sampler.h"

namespace nfvm::obs {
namespace {

TEST(BuildInfo, FieldsArePopulated) {
  const BuildInfo info = build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
#if NFVM_OBS
  EXPECT_TRUE(info.obs_enabled);
#else
  EXPECT_FALSE(info.obs_enabled);
#endif
}

TEST(RunInfo, PeakRssIsPositiveOnLinux) {
#ifdef __linux__
  EXPECT_GT(peak_rss_kb(), 0u);
#endif
}

TEST(RunInfo, TimestampLooksLikeIso8601Utc) {
  const std::string t = iso8601_utc_now();
  // "2026-08-06T12:34:56Z"
  ASSERT_EQ(t.size(), 20u);
  EXPECT_EQ(t[4], '-');
  EXPECT_EQ(t[7], '-');
  EXPECT_EQ(t[10], 'T');
  EXPECT_EQ(t[13], ':');
  EXPECT_EQ(t[16], ':');
  EXPECT_EQ(t.back(), 'Z');
}

TEST(RunManifest, WriteManifestPassesSchemaValidation) {
  RunManifest manifest;
  manifest.argv = {"nfvm-sim", "--topology", "geant", "--run-dir", "out"};
  manifest.start_time = iso8601_utc_now();
  manifest.end_time = iso8601_utc_now();
  manifest.wall_time_s = 1.25;
  manifest.config = {{"seed", "7"}, {"topology", "geant"}};
  manifest.artifacts = {"metrics.json", "events.jsonl"};

  std::ostringstream os;
  write_manifest(os, manifest);
  const JsonValue doc = parse_json(os.str());
  EXPECT_EQ(report::validate_document(doc), "");
  EXPECT_EQ(doc.at("schema").string, "nfvm-run-manifest-v1");
  ASSERT_EQ(doc.at("argv").array.size(), 5u);
  EXPECT_EQ(doc.at("argv").array[2].string, "geant");
  EXPECT_EQ(doc.at("config").at("seed").string, "7");
  EXPECT_EQ(doc.at("build").at("git_sha").string, build_info().git_sha);
  EXPECT_EQ(doc.at("build").at("obs_enabled").boolean, build_info().obs_enabled);
  ASSERT_EQ(doc.at("artifacts").array.size(), 2u);
}

TEST(TimeseriesSampler, WritesAtLeastOneValidSample) {
  Registry registry;
  registry.counter("ticks")->add(5);
  registry.gauge("level")->set(0.5);

  const std::string path = ::testing::TempDir() + "/nfvm_timeseries.jsonl";
  TimeseriesSampler sampler;
  ASSERT_TRUE(sampler.start(registry, path, std::chrono::milliseconds(10)));
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples_written(), 1u);

  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    const JsonValue sample = parse_json(line);
    EXPECT_TRUE(sample.at("t_ms").is_number());
    EXPECT_GE(sample.at("t_ms").number, 0.0);
    EXPECT_TRUE(sample.at("rss_kb").is_number());
    EXPECT_EQ(sample.at("counters").at("ticks").number, 5.0);
    EXPECT_EQ(sample.at("gauges").at("level").number, 0.5);
    ++lines;
  }
  EXPECT_EQ(lines, sampler.samples_written());
  EXPECT_EQ(report::validate_file(path), "");  // well-formed .jsonl
  std::remove(path.c_str());
}

TEST(TimeseriesSampler, StopWithoutStartIsSafe) {
  TimeseriesSampler sampler;
  sampler.stop();  // no-op
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.samples_written(), 0u);
}

TEST(TimeseriesSampler, RefusesUnwritablePath) {
  Registry registry;
  TimeseriesSampler sampler;
  EXPECT_FALSE(sampler.start(registry, "/nonexistent/dir/ts.jsonl",
                             std::chrono::milliseconds(10)));
  EXPECT_FALSE(sampler.running());
}

}  // namespace
}  // namespace nfvm::obs
