// End-to-end invariant of the admission-path instrumentation: the rejection
// cause counters partition online.rejected.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/online_cp.h"
#include "obs/metrics.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm {
namespace {

std::uint64_t counter_value(const std::string& name) {
  return obs::Registry::global().counter(name)->value();
}

TEST(ObsCounters, RejectCauseCountersSumToRejected) {
  obs::Registry::global().reset_values();

  // A tiny overloaded topology with a long arrival sequence guarantees
  // capacity-driven rejections (same setup as the SimulationMetrics
  // breakdown test in test_simulator.cpp).
  util::Rng topo_rng(18);
  const topo::Topology t = topo::make_waxman(20, topo_rng);
  util::Rng rng(19);
  sim::RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  const sim::SimulationMetrics m = sim::run_online(algo, gen.sequence(200));

  const std::uint64_t reject_sum = counter_value("online.reject.bandwidth") +
                                   counter_value("online.reject.compute") +
                                   counter_value("online.reject.threshold") +
                                   counter_value("online.reject.delay") +
                                   counter_value("online.reject.other");
  // The invariant holds whether or not the obs layer is compiled in: with
  // NFVM_OBS=0 every counter reads zero and both sides collapse to 0.
  EXPECT_EQ(reject_sum, counter_value("online.rejected"));
#if NFVM_OBS
  EXPECT_GT(m.num_rejected, 0u);
  EXPECT_EQ(counter_value("online.rejected"),
            static_cast<std::uint64_t>(m.num_rejected));
  EXPECT_EQ(counter_value("online.admitted"),
            static_cast<std::uint64_t>(m.num_admitted));
#else
  (void)m;
  EXPECT_EQ(counter_value("online.rejected"), 0u);
#endif
}

}  // namespace
}  // namespace nfvm
