#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/metrics.h"

namespace nfvm::obs {
namespace {

TEST(HdrHistogram, BucketIndexEdges) {
  // Non-positive and NaN samples land in bucket 0.
  EXPECT_EQ(HdrHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(HdrHistogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(HdrHistogram::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Below the covered range -> bucket 0 as well.
  EXPECT_EQ(HdrHistogram::bucket_index(std::ldexp(1.0, HdrHistogram::kMinOctave - 2)), 0u);
  // Above the covered range -> the overflow bucket.
  EXPECT_EQ(HdrHistogram::bucket_index(std::ldexp(1.0, HdrHistogram::kMaxOctave + 2)),
            HdrHistogram::kNumBuckets - 1);
  EXPECT_EQ(HdrHistogram::bucket_index(std::numeric_limits<double>::infinity()),
            HdrHistogram::kNumBuckets - 1);
}

TEST(HdrHistogram, BucketBoundsAreConsistent) {
  // Every in-range sample must fall strictly below its bucket's upper bound
  // and at or above the previous bucket's upper bound.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> octave(HdrHistogram::kMinOctave,
                                                HdrHistogram::kMaxOctave + 1);
  for (int i = 0; i < 20000; ++i) {
    const double sample = std::exp2(octave(rng));
    const std::size_t b = HdrHistogram::bucket_index(sample);
    ASSERT_LT(b, HdrHistogram::kNumBuckets - 1) << sample;
    ASSERT_LT(sample, HdrHistogram::bucket_upper_bound(b)) << sample;
    if (b > 0) {
      ASSERT_GE(sample, HdrHistogram::bucket_upper_bound(b - 1)) << sample;
    }
  }
}

TEST(HdrHistogram, TracksCountSumMinMax) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(h.snapshot_buckets().empty());
  h.observe(3.0);
  h.observe(1.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.snapshot_buckets().empty());
}

TEST(HdrHistogram, ConcurrentObservationsAreNotLost) {
  HdrHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0 + t);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

/// The tentpole guarantee: for in-range samples, any quantile estimate is
/// within 1% of the true sample quantile. Pinned over a worst-case-oriented
/// sweep: log-uniform samples (every octave equally loaded) plus adversarial
/// just-past-a-bucket-boundary values, across many quantiles.
TEST(HdrHistogram, QuantileRelativeErrorWithinOnePercent) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> octave(-8.0, 20.0);
  std::vector<double> samples;
  samples.reserve(60000);
  for (int i = 0; i < 50000; ++i) samples.push_back(std::exp2(octave(rng)));
  // Adversarial: values immediately above bucket lower bounds, where the
  // in-bucket interpolation error is largest.
  for (int o = -8; o < 20; ++o) {
    for (std::size_t s = 0; s < HdrHistogram::kSubBuckets; s += 17) {
      const double lower =
          std::ldexp(1.0 + static_cast<double>(s) / HdrHistogram::kSubBuckets, o);
      samples.push_back(std::nextafter(lower, 2.0 * lower));
    }
  }

  HdrHistogram h;
  for (double s : samples) h.observe(s);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  double worst = 0.0;
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0}) {
    const double estimated = h.quantile(q);
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const double exact = sorted[rank == 0 ? 0 : rank - 1];
    const double rel = std::abs(estimated - exact) / exact;
    worst = std::max(worst, rel);
    EXPECT_LE(rel, 0.01) << "q=" << q << " exact=" << exact
                         << " estimated=" << estimated;
  }
  // The design bound is 1/128 ~ 0.78%; leave the assertion at the documented
  // 1% so a legitimate constant tweak does not silently invalidate docs.
  EXPECT_LE(worst, 0.01);
}

/// The log2 Histogram's contract stays what it always was: within a factor
/// of 2. Pinned here next to the HDR bound so the two guarantees are
/// documented by the same suite.
TEST(Histogram, QuantileWithinFactorTwo) {
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> octave(0.0, 16.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(std::exp2(octave(rng)));
  Histogram h;
  for (double s : samples) h.observe(s);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.25, 0.50, 0.90, 0.99}) {
    const double estimated = estimate_quantile(h, q);
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const double exact = sorted[rank - 1];
    EXPECT_GE(estimated, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimated, exact * 2.0) << "q=" << q;
  }
}

TEST(HdrHistogram, QuantileClampsToObservedMinMax) {
  HdrHistogram h;
  h.observe(100.0);
  h.observe(100.5);  // same bucket
  EXPECT_GE(h.quantile(0.0), 100.0);
  EXPECT_LE(h.quantile(1.0), 100.5);
}

TEST(HdrHistogram, EstimateQuantileOverloadMatchesMethod) {
  HdrHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(estimate_quantile(h, 0.9), h.quantile(0.9));
}

}  // namespace
}  // namespace nfvm::obs
