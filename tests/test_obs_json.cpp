// Edge cases of the obs:: JSON parser: escapes, unicode, the "+Inf" bucket
// bound convention, deep nesting, and the error paths.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace nfvm::obs {
namespace {

TEST(JsonParser, StringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\/d\b\f\n\r\te")");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string, "a\"b\\c/d\b\f\n\r\te");
}

TEST(JsonParser, UnicodeEscapesDecodeToUtf8) {
  // 2-byte (é), 3-byte (€), and a surrogate pair (😀 = U+1F600).
  const JsonValue v = parse_json(R"("é € 😀")");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string, "\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80");
}

TEST(JsonParser, UnpairedSurrogatesAreRejected) {
  EXPECT_THROW(parse_json(R"("\ud83d")"), std::runtime_error);
  EXPECT_THROW(parse_json(R"("\ud83dA")"), std::runtime_error);
  EXPECT_THROW(parse_json(R"("\ude00")"), std::runtime_error);
}

TEST(JsonParser, RawControlCharactersAreRejected) {
  EXPECT_THROW(parse_json("\"a\nb\""), std::runtime_error);
  EXPECT_THROW(parse_json("\"a\tb\""), std::runtime_error);
}

TEST(JsonParser, PlusInfBucketBoundsStaySymbolicStrings) {
  // Registry::write_json encodes the overflow bucket's bound as the string
  // "+Inf" (JSON has no infinity literal); the parser must keep it a string
  // and never coerce it into a number.
  const JsonValue doc = parse_json(
      R"({"histograms":{"h":{"count":3,"sum":9,)"
      R"("buckets":[{"le":2,"count":1},{"le":"+Inf","count":2}]}}})");
  const JsonValue& buckets = doc.at("histograms").at("h").at("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.array.size(), 2u);
  EXPECT_TRUE(buckets.array[0].at("le").is_number());
  EXPECT_EQ(buckets.array[0].at("le").number, 2.0);
  ASSERT_TRUE(buckets.array[1].at("le").is_string());
  EXPECT_EQ(buckets.array[1].at("le").string, "+Inf");
  // "+Inf" in a bare value position is not JSON at all.
  EXPECT_THROW(parse_json("+Inf"), std::runtime_error);
  EXPECT_THROW(parse_json("Infinity"), std::runtime_error);
}

TEST(JsonParser, NestedEmptyObjectsAndArrays) {
  const JsonValue v = parse_json(R"({"a":{"b":{}},"c":[[],{}],"d":{}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.at("a").at("b").is_object());
  EXPECT_TRUE(v.at("a").at("b").object.empty());
  ASSERT_EQ(v.at("c").array.size(), 2u);
  EXPECT_TRUE(v.at("c").array[0].is_array());
  EXPECT_TRUE(v.at("c").array[0].array.empty());
  EXPECT_TRUE(v.at("c").array[1].is_object());
  EXPECT_TRUE(v.at("d").object.empty());
}

TEST(JsonParser, ScalarsAndLiterals) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_EQ(parse_json("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_json("0").number, 0.0);
}

TEST(JsonParser, WhitespaceEverywhere) {
  const JsonValue v = parse_json(" \t\r\n{ \"k\" : [ 1 , 2 ] } \n");
  EXPECT_EQ(v.at("k").array.size(), 2u);
}

TEST(JsonParser, DuplicateKeysAreRejected) {
  EXPECT_THROW(parse_json(R"({"k":1,"k":2})"), std::runtime_error);
}

TEST(JsonParser, MalformedDocumentsAreRejected) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"k\":}"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);   // trailing bytes
  EXPECT_THROW(parse_json("1.2.3"), std::runtime_error); // malformed number
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
  EXPECT_THROW(parse_json(R"("\x41")"), std::runtime_error);  // unknown escape
}

TEST(JsonParser, ErrorsCarryByteOffsets) {
  try {
    parse_json("{\"k\": nope}");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonValue, AtThrowsOnMissingKey) {
  const JsonValue v = parse_json(R"({"present":1})");
  EXPECT_TRUE(v.has("present"));
  EXPECT_FALSE(v.has("absent"));
  EXPECT_THROW(v.at("absent"), std::runtime_error);
}

TEST(JsonRoundTrip, WriterOutputParsesBack) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("text").value("line1\nline2\t\"quoted\"");
  w.key("nested").begin_object().key("empty").begin_object().end_object().end_object();
  w.key("values").begin_array().value(1.5).value(std::uint64_t{7}).null().value(true).end_array();
  w.end_object();
  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.at("text").string, "line1\nline2\t\"quoted\"");
  EXPECT_TRUE(v.at("nested").at("empty").object.empty());
  ASSERT_EQ(v.at("values").array.size(), 4u);
  EXPECT_EQ(v.at("values").array[0].number, 1.5);
  EXPECT_TRUE(v.at("values").array[2].is_null());
}

// ---------------------------------------------------------------------------
// JsonlCursor: the truncated-file-safe record iterator
// ---------------------------------------------------------------------------

TEST(JsonlCursor, TracksOffsetsAndLineNumbers) {
  JsonlCursor cursor("{\"a\":1}\n\n{\"b\":2}\n");
  JsonlCursor::Record record;
  ASSERT_TRUE(cursor.next(record));
  EXPECT_EQ(record.line, "{\"a\":1}");
  EXPECT_EQ(record.offset, 0u);
  EXPECT_EQ(record.number, 1u);
  EXPECT_FALSE(record.unterminated);
  // The blank line is skipped but still counted.
  ASSERT_TRUE(cursor.next(record));
  EXPECT_EQ(record.line, "{\"b\":2}");
  EXPECT_EQ(record.offset, 9u);
  EXPECT_EQ(record.number, 3u);
  EXPECT_FALSE(cursor.next(record));
}

TEST(JsonlCursor, FlagsUnterminatedTail) {
  JsonlCursor cursor("{\"a\":1}\n{\"b\":");
  JsonlCursor::Record record;
  ASSERT_TRUE(cursor.next(record));
  EXPECT_FALSE(record.unterminated);
  ASSERT_TRUE(cursor.next(record));
  EXPECT_TRUE(record.unterminated);
  EXPECT_EQ(record.line, "{\"b\":");
  // The cut record fails to parse, named as a truncation with its absolute
  // byte position.
  try {
    parse_jsonl_record(record);
    FAIL() << "truncated record parsed";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST(JsonlCursor, ParseableUnterminatedTailStillParses) {
  // Kill landed between the payload and the '\n': flagged, but usable.
  JsonlCursor cursor("{\"a\":1}");
  JsonlCursor::Record record;
  ASSERT_TRUE(cursor.next(record));
  EXPECT_TRUE(record.unterminated);
  EXPECT_EQ(parse_jsonl_record(record).at("a").number, 1.0);
}

TEST(JsonlCursor, EmptyBufferYieldsNothing) {
  JsonlCursor empty("");
  JsonlCursor blank("\n\n\n");
  JsonlCursor::Record record;
  EXPECT_FALSE(empty.next(record));
  EXPECT_FALSE(blank.next(record));
}

}  // namespace
}  // namespace nfvm::obs
