#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs_test_util.h"

namespace nfvm::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreNotLost) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, HoldsLastWrite) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(0.75);
  g.set(0.25);
  EXPECT_EQ(g.value(), 0.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketIndexIsLogTwo) {
  // Bucket 0 takes everything <= 1 (including non-positives), bucket i
  // covers (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0001), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_index(1025.0), 11u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
}

TEST(Histogram, BucketBoundsMatchIndex) {
  for (std::size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    const double ub = Histogram::bucket_upper_bound(b);
    EXPECT_EQ(Histogram::bucket_index(ub), b) << "bucket " << b;
  }
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper_bound(Histogram::kNumBuckets - 1)));
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_TRUE(std::isinf(h.max()));

  h.observe(3.0);
  h.observe(7.0);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0.5
  EXPECT_EQ(h.bucket_count(2), 1u);  // 3.0 in (2, 4]
  EXPECT_EQ(h.bucket_count(3), 1u);  // 7.0 in (4, 8]

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(Registry, GetOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("y"), a);
  // Counters, gauges and histograms live in separate namespaces.
  EXPECT_NE(static_cast<void*>(reg.gauge("x")), static_cast<void*>(a));
}

TEST(Registry, ResetValuesZeroesButKeepsInstruments) {
  Registry reg;
  Counter* c = reg.counter("events");
  Gauge* g = reg.gauge("level");
  Histogram* h = reg.histogram("latency");
  c->add(5);
  g->set(1.5);
  h->observe(10.0);

  reg.reset_values();

  // Cached pointers stay valid and read zero.
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.counter("events"), c);
  ASSERT_EQ(reg.counter_names().size(), 1u);
  EXPECT_EQ(reg.counter_names()[0], "events");
}

TEST(Registry, SnapshotsAreSortedByName) {
  Registry reg;
  reg.counter("zeta")->add(1);
  reg.counter("alpha")->add(2);
  const auto snap = reg.counter_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[0].second, 2u);
  EXPECT_EQ(snap[1].first, "zeta");
  EXPECT_EQ(snap[1].second, 1u);
}

TEST(Registry, JsonRoundTrip) {
  Registry reg;
  reg.counter("graph.dijkstra.runs")->add(17);
  reg.counter("needs \"escaping\"\n")->add(1);
  reg.gauge("sim.final_bandwidth_utilization")->set(0.375);
  Histogram* h = reg.histogram("online.decision_us");
  h->observe(3.0);
  h->observe(100.0);

  const test::JsonValue doc = test::parse_json(reg.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("counters").at("graph.dijkstra.runs").number, 17.0);
  EXPECT_EQ(doc.at("counters").at("needs \"escaping\"\n").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sim.final_bandwidth_utilization").number,
                   0.375);

  const test::JsonValue& hist = doc.at("histograms").at("online.decision_us");
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 103.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 100.0);
  const auto& buckets = hist.at("buckets").array;
  ASSERT_FALSE(buckets.empty());
  double total = 0.0;
  for (const auto& bucket : buckets) {
    ASSERT_TRUE(bucket.has("le"));
    total += bucket.at("count").number;
  }
  EXPECT_EQ(total, 2.0);
}

TEST(Registry, EmptyRegistryIsValidJson) {
  Registry reg;
  const test::JsonValue doc = test::parse_json(reg.to_json());
  EXPECT_TRUE(doc.at("counters").object.empty());
  EXPECT_TRUE(doc.at("gauges").object.empty());
  EXPECT_TRUE(doc.at("histograms").object.empty());
}

TEST(Registry, HistogramMinMaxOmittedWhenEmpty) {
  Registry reg;
  reg.histogram("unused");
  const test::JsonValue doc = test::parse_json(reg.to_json());
  const test::JsonValue& hist = doc.at("histograms").at("unused");
  EXPECT_EQ(hist.at("count").number, 0.0);
  EXPECT_FALSE(hist.has("min"));
  EXPECT_FALSE(hist.has("max"));
}

TEST(Macros, WriteToGlobalRegistry) {
  Counter* c = Registry::global().counter("test.macro.counter");
  const std::uint64_t before = c->value();
  NFVM_COUNTER_INC("test.macro.counter");
  NFVM_COUNTER_ADD("test.macro.counter", 4);
#if NFVM_OBS
  EXPECT_EQ(c->value(), before + 5);
#else
  EXPECT_EQ(c->value(), before);
#endif
  NFVM_GAUGE_SET("test.macro.gauge", 2.5);
#if NFVM_OBS
  EXPECT_EQ(Registry::global().gauge("test.macro.gauge")->value(), 2.5);
#endif
  NFVM_HISTOGRAM_OBSERVE("test.macro.histogram", 9.0);
#if NFVM_OBS
  EXPECT_GE(Registry::global().histogram("test.macro.histogram")->count(), 1u);
#endif
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NumberNeverEmitsNonFinite) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(-2.0), "-2");
  // Round-trips through the parser exactly.
  const double pi = 3.141592653589793;
  EXPECT_EQ(test::parse_json(json_number(pi)).number, pi);
}

TEST(Json, WriterEmitsWellFormedNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("list").begin_array().value(std::uint64_t{1}).value("two").end_array();
  w.key("flag").value(true);
  w.key("nothing").null();
  w.end_object();
  EXPECT_EQ(w.depth(), 0u);

  const test::JsonValue doc = test::parse_json(out.str());
  ASSERT_EQ(doc.at("list").array.size(), 2u);
  EXPECT_EQ(doc.at("list").array[1].string, "two");
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_EQ(doc.at("nothing").type, test::JsonValue::Type::kNull);
}

TEST(Json, WriterThrowsOnMisuse) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  EXPECT_THROW(w.value(1.0), std::logic_error);   // value without key
  EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
}

}  // namespace
}  // namespace nfvm::obs
