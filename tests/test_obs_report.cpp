// Quantile estimation and the nfvm-report library: artifact validation,
// loading, flattening and baseline/candidate comparison.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace nfvm::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EstimateQuantile, EmptyHistogramIsNaN) {
  EXPECT_TRUE(std::isnan(estimate_quantile({}, 0.5, kInf, -kInf)));
  EXPECT_TRUE(std::isnan(
      estimate_quantile({{2.0, 0}, {4.0, 0}}, 0.5, kInf, -kInf)));
  Histogram h;
  EXPECT_TRUE(std::isnan(estimate_quantile(h, 0.5)));
}

TEST(EstimateQuantile, SingleSampleReturnsExactValueViaMinMaxClamp) {
  Histogram h;
  h.observe(3.0);
  // min == max == 3 clamps the interpolation to the sample itself.
  EXPECT_DOUBLE_EQ(estimate_quantile(h, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(estimate_quantile(h, 0.99), 3.0);
}

TEST(EstimateQuantile, InterpolatesWithinBucket) {
  // 10 samples in (4, 8]: the median rank (5 of 10) sits halfway through
  // the bucket -> 6 by linear interpolation.
  const std::vector<HistogramBucket> buckets = {{4.0, 0}, {8.0, 10}};
  EXPECT_DOUBLE_EQ(estimate_quantile(buckets, 0.5, kInf, -kInf), 6.0);
  EXPECT_DOUBLE_EQ(estimate_quantile(buckets, 1.0, kInf, -kInf), 8.0);
}

TEST(EstimateQuantile, WalksCumulativeCounts) {
  // 60 below 1, 30 in (1,2], 10 in (2,4]: p50 is inside the first bucket,
  // p90 at the upper edge of the second, p99 inside the third.
  const std::vector<HistogramBucket> buckets = {{1.0, 60}, {2.0, 30}, {4.0, 10}};
  const double p50 = estimate_quantile(buckets, 0.50, kInf, -kInf);
  const double p90 = estimate_quantile(buckets, 0.90, kInf, -kInf);
  const double p99 = estimate_quantile(buckets, 0.99, kInf, -kInf);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  EXPECT_DOUBLE_EQ(p90, 2.0);
  EXPECT_GT(p99, 2.0);
  EXPECT_LE(p99, 4.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(EstimateQuantile, WithinFactorOfTwoOfTrueQuantile) {
  // The documented error bound: for samples > 1 the estimate lives in the
  // same base-2 bucket as the true quantile, so it is off by < 2x.
  Histogram h;
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    const double s = 1.0 + 0.25 * i;  // 1.25 .. 251
    samples.push_back(s);
    h.observe(s);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double truth = samples[static_cast<std::size_t>(q * samples.size()) - 1];
    const double estimate = estimate_quantile(h, q);
    EXPECT_GT(estimate, truth / 2.0) << "q=" << q;
    EXPECT_LT(estimate, truth * 2.0) << "q=" << q;
  }
}

TEST(EstimateQuantile, OverflowBucketUsesMaxValue) {
  // All mass in the +Inf bucket: max_value caps the interpolation.
  const std::vector<HistogramBucket> buckets = {{2.0, 0}, {kInf, 4}};
  const double p99 = estimate_quantile(buckets, 0.99, 2.5, 40.0);
  EXPECT_GT(p99, 2.0);
  EXPECT_LE(p99, 40.0);
}

// --- validation -------------------------------------------------------------

TEST(ReportValidate, AcceptsRegistryOutput) {
  Registry registry;
  registry.counter("a")->add(3);
  registry.gauge("g")->set(0.5);
  registry.histogram("h")->observe(7.0);
  registry.histogram("h")->observe(1e30);  // lands in the overflow bucket
  const JsonValue doc = parse_json(registry.to_json());
  EXPECT_EQ(report::validate_document(doc), "");
}

TEST(ReportValidate, RejectsBrokenMetrics) {
  EXPECT_NE(report::validate_document(parse_json(
                R"({"counters":{"c":"nope"},"gauges":{},"histograms":{}})")),
            "");
  EXPECT_NE(report::validate_document(parse_json(
                R"({"counters":{},"gauges":{},"histograms":{"h":{"sum":1}}})")),
            "");
  EXPECT_NE(report::validate_document(parse_json(
                R"({"counters":{},"gauges":{},"histograms":{"h":{"count":1,)"
                R"("sum":1,"buckets":[{"le":"huge","count":1}]}}})")),
            "");
  // Unrecognizable document shape.
  EXPECT_NE(report::validate_document(parse_json(R"({"hello":"world"})")), "");
}

TEST(ReportValidate, ChecksBenchSchema) {
  const char* good =
      R"({"schema":"nfvm-bench-v1","name":"b","meta":{"k":"v"},)"
      R"("wall_time_s":0.5,"columns":["n","cost"],)"
      R"("rows":[{"n":10,"cost":3.5},{"n":20,"cost":"inf"}],)"
      R"("metrics":{"counters":{},"gauges":{},"histograms":{}}})";
  EXPECT_EQ(report::validate_document(parse_json(good)), "");
  // rows must be objects of scalar cells.
  const char* bad =
      R"({"schema":"nfvm-bench-v1","name":"b","meta":{},"wall_time_s":0,)"
      R"("columns":[],"rows":[{"n":[1]}],)"
      R"("metrics":{"counters":{},"gauges":{},"histograms":{}}})";
  EXPECT_NE(report::validate_document(parse_json(bad)), "");
}

// --- loading + comparison ---------------------------------------------------

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

constexpr const char* kBaseMetrics =
    R"({"counters":{"online.admitted":100,"online.rejected":10},)"
    R"("gauges":{"load":0.5},)"
    R"("histograms":{"route_ms":{"count":100,"sum":300,"min":1,"max":9,)"
    R"("p50":2.5,"p90":6,"p99":8.5,)"
    R"("buckets":[{"le":2,"count":40},{"le":4,"count":40},{"le":16,"count":20}]}}})";

constexpr const char* kRegressedMetrics =
    R"({"counters":{"online.admitted":60,"online.rejected":50},)"
    R"("gauges":{"load":0.5},)"
    R"("histograms":{"route_ms":{"count":110,"sum":900,"min":1,"max":60,)"
    R"("p50":7,"p90":20,"p99":55,)"
    R"("buckets":[{"le":4,"count":40},{"le":16,"count":50},{"le":64,"count":20}]}}})";

TEST(ReportLoad, FlattensMetricsIntoScalars) {
  const report::Artifact a =
      report::load_artifact(write_temp("load_metrics.json", kBaseMetrics));
  EXPECT_EQ(a.kind, report::ArtifactKind::kMetrics);
  EXPECT_EQ(a.scalars.at("counters.online.admitted"), 100.0);
  EXPECT_EQ(a.scalars.at("gauges.load"), 0.5);
  EXPECT_EQ(a.scalars.at("histograms.route_ms.count"), 100.0);
  EXPECT_EQ(a.scalars.at("histograms.route_ms.p50"), 2.5);
}

TEST(ReportLoad, DerivesPercentilesFromBucketsWhenAbsent) {
  // Pre-percentile artifacts (no p50/p90/p99 keys) still get comparable
  // percentile scalars, estimated from their buckets.
  const report::Artifact a = report::load_artifact(write_temp(
      "load_old_metrics.json",
      R"({"counters":{},"gauges":{},)"
      R"("histograms":{"h":{"count":10,"sum":60,"min":4.5,"max":8,)"
      R"("buckets":[{"le":4,"count":0},{"le":8,"count":10}]}}})"));
  ASSERT_TRUE(a.scalars.count("histograms.h.p50"));
  EXPECT_GT(a.scalars.at("histograms.h.p50"), 4.0);
  EXPECT_LE(a.scalars.at("histograms.h.p50"), 8.0);
}

TEST(ReportLoad, ThrowsOnMissingAndInvalidFiles) {
  EXPECT_THROW(report::load_artifact("/nonexistent/nowhere.json"),
               std::runtime_error);
  EXPECT_THROW(
      report::load_artifact(write_temp("load_bad.json", "{\"not\": \"art\"}")),
      std::runtime_error);
}

TEST(ReportCompare, FlagsRegressionsAboveThreshold) {
  const report::Artifact base =
      report::load_artifact(write_temp("cmp_base.json", kBaseMetrics));
  const report::Artifact cand =
      report::load_artifact(write_temp("cmp_cand.json", kRegressedMetrics));
  report::CompareOptions options;
  options.threshold = 0.10;
  const report::CompareReport r = report::compare_artifacts(base, cand, options);
  EXPECT_GT(r.num_regressions, 0u);
  bool saw_admitted = false;
  for (const report::Delta& d : r.deltas) {
    if (d.key == "counters.online.admitted") {
      saw_admitted = true;
      EXPECT_NEAR(d.rel, -0.4, 1e-9);
      EXPECT_TRUE(d.regression);
    }
    if (d.key == "gauges.load") {
      EXPECT_FALSE(d.regression);  // unchanged
    }
  }
  EXPECT_TRUE(saw_admitted);
}

TEST(ReportCompare, SelfDiffHasNoRegressions) {
  const report::Artifact a =
      report::load_artifact(write_temp("cmp_self.json", kBaseMetrics));
  const report::CompareReport r =
      report::compare_artifacts(a, a, report::CompareOptions{});
  EXPECT_EQ(r.num_regressions, 0u);
  for (const report::Delta& d : r.deltas) {
    EXPECT_EQ(d.rel, 0.0);
  }
}

TEST(ReportCompare, IgnorePatternsSuppressGating) {
  const report::Artifact base =
      report::load_artifact(write_temp("cmp_ig_base.json", kBaseMetrics));
  const report::Artifact cand =
      report::load_artifact(write_temp("cmp_ig_cand.json", kRegressedMetrics));
  report::CompareOptions options;
  options.threshold = 0.10;
  // Substrings covering every differing key family.
  options.ignore = {"counters.", "route_ms"};
  const report::CompareReport r = report::compare_artifacts(base, cand, options);
  EXPECT_EQ(r.num_regressions, 0u);
}

TEST(ReportCompare, TracksKeysOnlyOnOneSide) {
  const report::Artifact base = report::load_artifact(write_temp(
      "cmp_only_base.json",
      R"({"counters":{"old":1,"both":2},"gauges":{},"histograms":{}})"));
  const report::Artifact cand = report::load_artifact(write_temp(
      "cmp_only_cand.json",
      R"({"counters":{"both":2,"new":3},"gauges":{},"histograms":{}})"));
  const report::CompareReport r =
      report::compare_artifacts(base, cand, report::CompareOptions{});
  ASSERT_EQ(r.only_baseline.size(), 1u);
  EXPECT_EQ(r.only_baseline[0], "counters.old");
  ASSERT_EQ(r.only_candidate.size(), 1u);
  EXPECT_EQ(r.only_candidate[0], "counters.new");
  // New/removed keys inform but never gate.
  EXPECT_EQ(r.num_regressions, 0u);
}

TEST(ReportCompare, ZeroBaselineMovementIsInfiniteRelativeChange) {
  const report::Artifact base = report::load_artifact(write_temp(
      "cmp_zero_base.json", R"({"counters":{"c":0},"gauges":{},"histograms":{}})"));
  const report::Artifact cand = report::load_artifact(write_temp(
      "cmp_zero_cand.json", R"({"counters":{"c":5},"gauges":{},"histograms":{}})"));
  report::CompareOptions options;
  options.threshold = 1e9;  // even a huge threshold cannot absorb inf
  const report::CompareReport r = report::compare_artifacts(base, cand, options);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_TRUE(std::isinf(r.deltas[0].rel));
  EXPECT_TRUE(r.deltas[0].regression);
  EXPECT_EQ(r.num_regressions, 1u);
}

TEST(ReportOutput, JsonReportRoundTrips) {
  const report::Artifact base =
      report::load_artifact(write_temp("out_base.json", kBaseMetrics));
  const report::Artifact cand =
      report::load_artifact(write_temp("out_cand.json", kRegressedMetrics));
  report::CompareOptions options;
  options.threshold = 0.25;
  options.ignore = {"sum"};
  const report::CompareReport r = report::compare_artifacts(base, cand, options);

  std::ostringstream os;
  report::write_report_json(os, base, cand, r, options);
  const JsonValue doc = parse_json(os.str());
  EXPECT_EQ(doc.at("schema").string, "nfvm-report-v1");
  EXPECT_EQ(doc.at("threshold").number, 0.25);
  ASSERT_EQ(doc.at("ignore").array.size(), 1u);
  EXPECT_EQ(doc.at("ignore").array[0].string, "sum");
  EXPECT_EQ(doc.at("num_regressions").number,
            static_cast<double>(r.num_regressions));
  EXPECT_EQ(doc.at("deltas").array.size(), r.deltas.size());

  std::ostringstream md;
  report::write_report_markdown(md, base, cand, r, options);
  EXPECT_NE(md.str().find("regression"), std::string::npos);

  std::ostringstream summary;
  report::write_summary(summary, base);
  EXPECT_NE(summary.str().find("online.admitted"), std::string::npos);
}

TEST(ReportValidateFile, ChecksJsonlLineByLine) {
  const std::string good =
      write_temp("lines.jsonl", "{\"a\":1}\n{\"b\":2}\n");
  EXPECT_EQ(report::validate_file(good), "");
  const std::string bad =
      write_temp("bad_lines.jsonl", "{\"a\":1}\nnot json\n");
  EXPECT_NE(report::validate_file(bad), "");
}

}  // namespace
}  // namespace nfvm::obs
