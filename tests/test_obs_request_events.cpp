// Request-event loading, latency aggregation, stream invariants, and the
// explain / decisions projections behind nfvm-report's observability
// subcommands.
#include "obs/request_events.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/run_info.h"

namespace nfvm::obs::report {
namespace {

/// Writes a small synthetic v2 event log through the real EventLog + stamp
/// machinery, exactly as nfvm-sim does.
std::string write_fixture_log(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EventLog log;
  EXPECT_TRUE(log.open(path));
  JsonLine stamp;
  stamp.field("schema", kEventsSchema)
      .field("config_hash", config_hash_hex("fixture"))
      .field("seed", std::uint64_t{7});
  log.set_stamp(stamp);

  const auto emit = [&log](std::uint64_t index, bool admitted, double total_us) {
    JsonLine line;
    line.field("event", "request")
        .field("algorithm", "Online_CP")
        .field("index", index)
        .field("request_id", index + 1)
        .field("source", std::uint64_t{3})
        .field("num_destinations", std::uint64_t{2})
        .field("bandwidth_mbps", 100.0)
        .field("admitted", admitted);
    if (admitted) {
      line.field("cost", 12.5).field("servers", std::uint64_t{1});
    } else {
      line.field("reject_cause", "threshold")
          .field("reject_reason", "tree exceeds the bandwidth threshold");
    }
    line.field("decision_us", total_us + 1.0)
        .field("fast_path", true)
        .field("total_us", total_us)
        .field("phase_classify_us", total_us * 0.05)
        .field("phase_closure_us", total_us * 0.40)
        .field("phase_eval_us", total_us * 0.30)
        .field("phase_realize_us", total_us * 0.10)
        .field("phase_view_patch_us", total_us * 0.05)
        .field("servers_total", std::uint64_t{6})
        .field("servers_eligible", std::uint64_t{5})
        .field("servers_evaluated", std::uint64_t{5})
        .field("candidates_feasible", std::uint64_t{admitted ? 1 : 0});
    if (admitted) line.field("chosen_server", std::int64_t{4});
    log.write(line);
  };
  emit(0, true, 100.0);
  emit(1, true, 200.0);
  emit(2, false, 150.0);
  // A non-request line (run summary) that loaders must skip.
  JsonLine summary;
  summary.field("event", "summary").field("requests", std::uint64_t{3});
  log.write(summary);
  log.close();
  return path;
}

TEST(RequestEvents, LoadsStampAndProvenance) {
  const std::string path = write_fixture_log("req_events_load.jsonl");
  const auto events = load_request_events(path);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].schema, kEventsSchema);
  EXPECT_EQ(events[0].config_hash, config_hash_hex("fixture"));
  EXPECT_TRUE(events[0].has_seed);
  EXPECT_EQ(events[0].seed, 7u);
  EXPECT_TRUE(events[0].has_provenance);
  EXPECT_TRUE(events[0].admitted);
  EXPECT_FALSE(events[2].admitted);
  EXPECT_EQ(events[2].reject_cause, "threshold");
  EXPECT_EQ(events[1].request_id, 2u);
}

TEST(RequestEvents, LoadRejectsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/req_events_bad.jsonl";
  std::ofstream(path) << "{\"event\":\"request\",}\n";
  EXPECT_THROW(load_request_events(path), std::runtime_error);
  EXPECT_THROW(load_request_events("/nonexistent/events.jsonl"),
               std::runtime_error);
}

TEST(RequestEvents, AggregateLatencyBuildsPhaseRows) {
  const auto events = load_request_events(write_fixture_log("req_events_agg.jsonl"));
  const LatencyReport report = aggregate_latency(events);
  EXPECT_EQ(report.num_events, 3u);
  EXPECT_EQ(report.num_with_provenance, 3u);
  bool saw_closure = false;
  for (const LatencyRow& row : report.rows) {
    EXPECT_EQ(row.algorithm, "Online_CP");
    if (row.phase == "closure") {
      saw_closure = true;
      EXPECT_EQ(row.count, 3u);
      // Closure is 40% of every total in the fixture.
      EXPECT_NEAR(row.share, 0.40, 1e-9);
      // p50 of {40, 80, 60} with <= 1% HDR error.
      EXPECT_NEAR(row.p50_us, 60.0, 60.0 * 0.01);
      EXPECT_DOUBLE_EQ(row.max_us, 80.0);
    }
    if (row.phase == "total") EXPECT_EQ(row.count, 3u);
    if (row.phase == "decision") EXPECT_EQ(row.count, 3u);
  }
  EXPECT_TRUE(saw_closure);
}

TEST(RequestEvents, WritersProduceAllThreeFormats) {
  const auto events = load_request_events(write_fixture_log("req_events_fmt.jsonl"));
  const LatencyReport report = aggregate_latency(events);
  std::ostringstream text, md, json;
  write_latency_text(text, report);
  write_latency_markdown(md, report);
  write_latency_json(json, report);
  EXPECT_NE(text.str().find("closure"), std::string::npos);
  EXPECT_NE(md.str().find("| closure |"), std::string::npos);
  const JsonValue doc = parse_json(json.str());
  EXPECT_EQ(doc.at("schema").string, "nfvm-latency-v1");
  EXPECT_GT(doc.at("rows").array.size(), 0u);
  for (const JsonValue& row : doc.at("rows").array) {
    EXPECT_TRUE(row.at("p99_us").is_number());
  }
}

TEST(RequestEvents, CheckAcceptsTheFixture) {
  const auto events = load_request_events(write_fixture_log("req_events_ok.jsonl"));
  EXPECT_EQ(check_events(events), "");
}

TEST(RequestEvents, CheckFlagsViolations) {
  EXPECT_NE(check_events({}), "");

  auto events = load_request_events(write_fixture_log("req_events_bad2.jsonl"));
  auto broken = events;
  broken[1].admitted = false;  // rejected without a cause
  broken[1].reject_cause.clear();
  EXPECT_NE(check_events(broken), "");

  broken = events;
  broken[2].config_hash = "deadbeefdeadbeef";  // mixed-run stamp
  EXPECT_NE(check_events(broken), "");

  broken = events;
  broken[0].decision_us = -1.0;
  EXPECT_NE(check_events(broken), "");
}

TEST(RequestEvents, FindRequestPrefersIdThenIndex) {
  const auto events = load_request_events(write_fixture_log("req_events_find.jsonl"));
  // "2" matches request_id 2 (stream index 1), not stream index 2.
  const RequestEvent* by_id = find_request(events, "2");
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(by_id->index, 1u);
  // "0" matches no request_id, falls back to stream index 0.
  const RequestEvent* by_index = find_request(events, "0");
  ASSERT_NE(by_index, nullptr);
  EXPECT_EQ(by_index->request_id, 1u);
  EXPECT_EQ(find_request(events, "99"), nullptr);
  EXPECT_EQ(find_request(events, "not-a-number"), nullptr);
}

TEST(RequestEvents, ExplainPrintsAdmittedAndRejected) {
  const auto events = load_request_events(write_fixture_log("req_events_explain.jsonl"));
  std::ostringstream admitted;
  write_explain(admitted, events[0]);
  EXPECT_NE(admitted.str().find("ADMITTED"), std::string::npos);
  EXPECT_NE(admitted.str().find("chosen_server=4"), std::string::npos);
  EXPECT_NE(admitted.str().find("closure"), std::string::npos);
  std::ostringstream rejected;
  write_explain(rejected, events[2]);
  EXPECT_NE(rejected.str().find("REJECTED"), std::string::npos);
  EXPECT_NE(rejected.str().find("threshold"), std::string::npos);
}

TEST(RequestEvents, DecisionsProjectionIsTimingFree) {
  const auto events = load_request_events(write_fixture_log("req_events_dec.jsonl"));
  std::ostringstream out;
  write_decisions(out, events);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("admit cost=12.5"), std::string::npos);
  EXPECT_NE(text.find("reject cause=threshold"), std::string::npos);
  // No timing field leaks into the canonical projection.
  EXPECT_EQ(text.find("_us"), std::string::npos);
}

TEST(EventLogStamp, PrependsFieldsToEveryLine) {
  const std::string path = ::testing::TempDir() + "/stamped.jsonl";
  EventLog log;
  ASSERT_TRUE(log.open(path));
  JsonLine stamp;
  stamp.field("schema", kEventsSchema).field("config_hash", "abc");
  log.set_stamp(stamp);
  JsonLine line;
  line.field("event", "request").field("index", std::uint64_t{0});
  log.write(line);
  log.close();
  std::ifstream in(path);
  std::string written;
  std::getline(in, written);
  EXPECT_EQ(written,
            "{\"schema\":\"nfvm-events-v2\",\"config_hash\":\"abc\","
            "\"event\":\"request\",\"index\":0}");
}

TEST(ConfigHash, IsStableAndDistinguishes) {
  EXPECT_EQ(config_hash_hex("a"), config_hash_hex("a"));
  EXPECT_NE(config_hash_hex("a"), config_hash_hex("b"));
  EXPECT_EQ(config_hash_hex("").size(), 16u);
  // FNV-1a 64 offset basis: hash of the empty string.
  EXPECT_EQ(config_hash_hex(""), "cbf29ce484222325");
}

}  // namespace
}  // namespace nfvm::obs::report
