// TimeseriesSampler lifecycle and output-format tests. Ticks come from the
// sampler's own thread, so tests that need more than the final stop()
// snapshot poll samples_written() under a generous deadline instead of
// assuming wall-clock timing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/window.h"

namespace nfvm::obs {
namespace {

/// Spins until the sampler wrote at least `n` samples (deadline 10 s -
/// far beyond any sane scheduling delay for a millisecond interval).
bool wait_for_samples(const TimeseriesSampler& sampler, std::size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.samples_written() < n) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TimeseriesSampler, LifecycleAndFinalSample) {
  Registry registry;
  TimeseriesSampler sampler;
  const std::string path = "sampler_lifecycle.jsonl";
  // Huge interval: the only guaranteed line is the final stop() snapshot.
  ASSERT_TRUE(sampler.start(registry, path,
                            std::chrono::milliseconds(60'000)));
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.start(registry, path, std::chrono::milliseconds(1)))
      << "start while running must refuse";
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples_written(), 1u);
  sampler.stop();  // idempotent
  EXPECT_EQ(read_lines(path).size(), sampler.samples_written());
  std::remove(path.c_str());
}

TEST(TimeseriesSampler, RefusesUnopenablePath) {
  Registry registry;
  TimeseriesSampler sampler;
  EXPECT_FALSE(sampler.start(registry, "/nonexistent_dir_nfvm/x.jsonl",
                             std::chrono::milliseconds(10)));
  EXPECT_FALSE(sampler.running());
}

TEST(TimeseriesSampler, NonPositiveIntervalClampsToOneMs) {
  Registry registry;
  TimeseriesSampler sampler;
  ASSERT_TRUE(sampler.start(registry, "", std::chrono::milliseconds(0)));
  EXPECT_EQ(sampler.interval(), std::chrono::milliseconds(1));
  sampler.stop();
  ASSERT_TRUE(sampler.start(registry, "", std::chrono::milliseconds(-5)));
  EXPECT_EQ(sampler.interval(), std::chrono::milliseconds(1));
  sampler.stop();
  ASSERT_TRUE(sampler.start(registry, "", std::chrono::milliseconds(250)));
  EXPECT_EQ(sampler.interval(), std::chrono::milliseconds(250));
  sampler.stop();
}

TEST(TimeseriesSampler, EmitsValidV2Lines) {
  Registry registry;
  registry.counter("online.requests")->add(10);
  registry.counter("online.admitted")->add(7);
  registry.counter("online.rejected")->add(3);
  registry.counter("online.reject.capacity")->add(3);
  registry.gauge("config.nodes")->set(60.0);
  registry.windowed_histogram("online.decision_us")
      ->observe(123.0, window_now_ms());

  TimeseriesSampler sampler;
  const std::string path = "sampler_v2_lines.jsonl";
  ASSERT_TRUE(sampler.start(registry, path, std::chrono::milliseconds(1)));
  ASSERT_TRUE(wait_for_samples(sampler, 3));
  registry.counter("online.requests")->add(5);
  sampler.stop();

  // Every line must pass the report validator (the .jsonl branch checks
  // tagged nfvm-timeseries-v2 lines field-by-field).
  EXPECT_EQ(report::validate_file(path), "");

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue doc = parse_json(lines[i]);
    EXPECT_EQ(doc.at("schema").string, kTimeseriesSchema);
    EXPECT_TRUE(doc.has("t_ms"));
    EXPECT_TRUE(doc.has("rss_kb"));
    EXPECT_TRUE(doc.has("current_rss_kb"));
    EXPECT_GT(doc.at("rss_kb").number, 0.0);
    // The counter bump lands between sample 3 and the final stop snapshot;
    // any given line saw either the old or the new value.
    const double requests = doc.at("counters").at("online.requests").number;
    EXPECT_TRUE(requests == 10.0 || requests == 15.0) << requests;
    if (i == 0) {
      EXPECT_DOUBLE_EQ(requests, 10.0);
    }
    if (i + 1 == lines.size()) {
      EXPECT_DOUBLE_EQ(requests, 15.0);
    }
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("config.nodes").number, 60.0);
    // The windowed instrument appears on every line; quantiles only while
    // the sliding window still holds the sample.
    const JsonValue& window = doc.at("windows").at("online.decision_us");
    EXPECT_TRUE(window.has("count"));
    EXPECT_TRUE(window.has("decayed_count"));
    if (window.at("count").number > 0) {
      EXPECT_NEAR(window.at("p50").number, 123.0, 123.0 / 64);
    }
    // First sample has no previous snapshot to difference against.
    EXPECT_EQ(doc.has("rates"), i != 0);
    if (doc.has("rates")) {
      EXPECT_TRUE(doc.at("rates").has("req_s"));
      EXPECT_TRUE(doc.at("rates").has("reject_s"));
      EXPECT_TRUE(doc.at("rates").has("reject.capacity_s"));
    }
  }
  std::remove(path.c_str());
}

TEST(TimeseriesSampler, FilelessModeDrivesSloTracker) {
  Registry registry;
  registry.counter("online.requests")->add(1);
  SloTracker tracker(parse_slo_specs("rss_kb >= 0 over 1ms"));
  TimeseriesSampler sampler;
  sampler.set_slo_tracker(&tracker);
  // Empty path: no file, ticks only feed the tracker.
  ASSERT_TRUE(sampler.start(registry, "", std::chrono::milliseconds(2)));
  ASSERT_TRUE(wait_for_samples(sampler, 5));
  sampler.stop();
  const SloObjective& objective = tracker.objectives()[0];
  EXPECT_GE(objective.windows_evaluated, 1u);
  EXPECT_EQ(objective.windows_breached, 0u);
  EXPECT_TRUE(tracker.pass());
  // stop() finished the tracker: later offers are ignored.
  tracker.offer(1 << 30, {{"rss_kb", -1.0}});
  EXPECT_TRUE(tracker.pass());
}

}  // namespace
}  // namespace nfvm::obs
