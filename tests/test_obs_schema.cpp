// Golden schema-stability tests for the observability artifacts.
//
// Downstream consumers (CI gates, dashboards, jq pipelines) parse these
// documents by field name. Removing or retyping a field is a breaking change
// that must be announced with a schema-tag bump; these tests pin the exact
// field sets so an unannounced change fails loudly here. Adding fields is
// fine - the golden sets are checked as subsets plus explicit type checks,
// and the full set equality is asserted only where the writer owns every key.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/online_cp.h"
#include "obs/event_log.h"
#include "obs/hdr_histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/request_events.h"
#include "obs/run_info.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

#ifndef NFVM_SOURCE_DIR
#define NFVM_SOURCE_DIR "."
#endif

namespace nfvm::obs {
namespace {

std::set<std::string> keys_of(const JsonValue& object) {
  std::set<std::string> keys;
  for (const auto& [key, value] : object.object) keys.insert(key);
  return keys;
}

void expect_subset(const std::set<std::string>& expected,
                   const std::set<std::string>& actual, const char* where) {
  for (const std::string& key : expected) {
    EXPECT_TRUE(actual.count(key)) << where << ": missing field \"" << key
                                   << "\" - schema break, bump the tag";
  }
}

TEST(MetricsSchemaV2, GoldenShape) {
  Registry reg;
  reg.counter("c.one")->add(3);
  reg.gauge("g.one")->set(0.5);
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("h.log2")->observe(i);
    reg.hdr_histogram("h.hdr")->observe(i);
  }
  const JsonValue doc = parse_json(reg.to_json());

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(keys_of(doc),
            (std::set<std::string>{"schema", "counters", "gauges", "histograms"}));
  EXPECT_EQ(doc.at("schema").string, std::string(kMetricsSchema));
  EXPECT_EQ(doc.at("schema").string, "nfvm-metrics-v2");

  EXPECT_TRUE(doc.at("counters").at("c.one").is_number());
  EXPECT_TRUE(doc.at("gauges").at("g.one").is_number());

  // Both histogram kinds share one golden per-histogram shape.
  for (const char* name : {"h.log2", "h.hdr"}) {
    const JsonValue& h = doc.at("histograms").at(name);
    EXPECT_EQ(keys_of(h),
              (std::set<std::string>{"kind", "count", "sum", "min", "max",
                                     "p50", "p90", "p99", "buckets"}))
        << name;
    EXPECT_TRUE(h.at("count").is_number()) << name;
    EXPECT_TRUE(h.at("p99").is_number()) << name;
    EXPECT_TRUE(h.at("buckets").is_array()) << name;
    const JsonValue& bucket = h.at("buckets").array.front();
    EXPECT_EQ(keys_of(bucket), (std::set<std::string>{"le", "count"})) << name;
  }
  EXPECT_EQ(doc.at("histograms").at("h.log2").at("kind").string, "log2");
  EXPECT_EQ(doc.at("histograms").at("h.hdr").at("kind").string, "hdr");

  // The v2 document still routes through the shape-based validator.
  std::ostringstream out;
  reg.write_json(out);
  EXPECT_EQ(report::validate_document(parse_json(out.str())), "");
}

TEST(MetricsSchemaV2, UnknownSchemaTagIsRejected) {
  Registry reg;
  reg.counter("c")->increment();
  std::string json = reg.to_json();
  const auto pos = json.find("nfvm-metrics-v2");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "nfvm-metrics-v9");
  EXPECT_NE(report::validate_document(parse_json(json)), "");
}

TEST(EventsSchemaV2, GoldenShapeFromTheRealEmitter) {
  // Drive the real simulator + event log end to end, then pin the emitted
  // field set for admitted and rejected provenance lines.
  util::Rng rng(11);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  const topo::Topology topo = topo::make_waxman(40, rng, wo);
  util::Rng workload(12);
  sim::RequestGenerator gen(topo, workload);
  // Long enough to saturate resources: the log must contain both admitted
  // and rejected lines, or the golden sets are only half-checked.
  const auto requests = gen.sequence(200);

  const std::string path = ::testing::TempDir() + "/schema_events.jsonl";
  EventLog log;
  ASSERT_TRUE(log.open(path));
  JsonLine stamp;
  stamp.field("schema", report::kEventsSchema)
      .field("config_hash", config_hash_hex("schema-test"))
      .field("seed", std::uint64_t{11});
  log.set_stamp(stamp);

  core::OnlineCp algo(topo);
  sim::SimulatorOptions opts;
  opts.event_log = &log;
  opts.record_provenance = true;
  sim::run_online(algo, requests, opts);
  log.close();

  const std::set<std::string> stamp_fields = {"schema", "config_hash", "seed"};
  const std::set<std::string> base_fields = {
      "event",    "algorithm",        "index",          "request_id",
      "source",   "num_destinations", "bandwidth_mbps", "admitted",
      "decision_us"};
#if NFVM_OBS
  const std::set<std::string> provenance_fields = {
      "fast_path",          "total_us",          "phase_classify_us",
      "phase_closure_us",   "phase_eval_us",     "phase_realize_us",
      "phase_view_patch_us", "servers_total",    "servers_eligible",
      "servers_evaluated",  "candidates_feasible", "spcache_hits",
      "spcache_misses",     "skip_compute",      "skip_sigma_v",
      "fail_disconnected",  "fail_sigma_e",      "fail_delay",
      "fail_capacity",      "cost_pruned"};
#else
  const std::set<std::string> provenance_fields;
#endif

  std::ifstream in(path);
  std::string line;
  bool saw_admit = false;
  bool saw_reject = false;
  while (std::getline(in, line)) {
    const JsonValue doc = parse_json(line);
    const std::set<std::string> actual = keys_of(doc);
    expect_subset(stamp_fields, actual, "events stamp");
    expect_subset(base_fields, actual, "events base");
    expect_subset(provenance_fields, actual, "events provenance");
    EXPECT_EQ(doc.at("schema").string, std::string(report::kEventsSchema));
    if (doc.at("admitted").boolean) {
      saw_admit = true;
      expect_subset({"cost", "servers"}, actual, "events admitted");
#if NFVM_OBS
      expect_subset({"chosen_server", "cost_total", "cost_steiner",
                     "cost_server", "cost_backhaul"},
                    actual, "events admitted provenance");
#endif
    } else {
      saw_reject = true;
      expect_subset({"reject_cause", "reject_reason"}, actual, "events rejected");
    }
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_reject);
  // The same file must satisfy the generic validator and the event checker.
  EXPECT_EQ(report::validate_file(path), "");
#if NFVM_OBS
  EXPECT_EQ(report::check_events(report::load_request_events(path)), "");
#endif
}

TEST(ManifestSchemaV1, GoldenShape) {
  RunManifest manifest;
  manifest.argv = {"nfvm-sim", "--seed", "1"};
  manifest.start_time = "2026-08-08T00:00:00Z";
  manifest.end_time = "2026-08-08T00:00:01Z";
  manifest.wall_time_s = 1.0;
  manifest.config["seed"] = "1";
  manifest.config["config_hash"] = config_hash_hex("seed=1;");
  manifest.artifacts = {"metrics.json", "events.jsonl"};
  std::ostringstream out;
  write_manifest(out, manifest);
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(keys_of(doc),
            (std::set<std::string>{"schema", "argv", "start_time", "end_time",
                                   "wall_time_s", "peak_rss_kb", "config",
                                   "build", "artifacts"}));
  EXPECT_EQ(doc.at("schema").string, "nfvm-run-manifest-v1");
  EXPECT_EQ(keys_of(doc.at("build")),
            (std::set<std::string>{"git_sha", "build_type", "compiler",
                                   "cxx_flags", "obs_enabled"}));
  EXPECT_EQ(report::validate_document(doc), "");
}

TEST(BenchSchemaV1, CheckedInBaselineStillParses) {
  // The baselines under bench/baselines/ are consumed by the CI perf gate;
  // pin their document shape against the parser that gate uses.
  const std::string path =
      std::string(NFVM_SOURCE_DIR) + "/bench/baselines/BENCH_micro_online_admit.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  EXPECT_EQ(doc.at("schema").string, "nfvm-bench-v1");
  expect_subset({"schema", "name", "meta", "wall_time_s", "columns", "rows"},
                keys_of(doc), "bench");
  EXPECT_TRUE(doc.at("columns").is_array());
  ASSERT_TRUE(doc.at("rows").is_array());
  ASSERT_FALSE(doc.at("rows").array.empty());
  // Every row carries exactly the declared columns, with "case"/"mode" as
  // strings and the rest numeric — except speedup_vs_legacy, which is "-"
  // on rebuild rows (no legacy-vs-legacy ratio) so the CI --min floor only
  // ever gates real speedups.
  std::set<std::string> columns;
  for (const JsonValue& c : doc.at("columns").array) columns.insert(c.string);
  for (const JsonValue& row : doc.at("rows").array) {
    EXPECT_EQ(keys_of(row), columns);
    for (const auto& [key, value] : row.object) {
      if (key == "case" || key == "mode") {
        EXPECT_TRUE(value.is_string()) << key;
      } else if (key == "speedup_vs_legacy") {
        const bool rebuild_row = row.at("mode").string == "rebuild";
        EXPECT_TRUE(rebuild_row ? value.is_string() && value.string == "-"
                                : value.is_number())
            << key;
      } else {
        EXPECT_TRUE(value.is_number()) << key;
      }
    }
  }
  EXPECT_EQ(report::validate_document(doc), "");
}

}  // namespace
}  // namespace nfvm::obs
