// SLO grammar and tracker tests. The tracker is clocked by explicit offer()
// timestamps, so window evaluation, budgets and burn rates are tested with
// arithmetic instead of sleeps.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/slo.h"

namespace nfvm::obs {
namespace {

using Values = std::map<std::string, double>;

TEST(SloParser, ParsesWindowedObjective) {
  const auto spec = parse_slo_line("online.decision_us p99 < 5000 over 10s");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->target, "online.decision_us");
  EXPECT_EQ(spec->stat, "p99");
  EXPECT_EQ(spec->op, SloOp::kLt);
  EXPECT_DOUBLE_EQ(spec->threshold, 5000.0);
  EXPECT_EQ(spec->window_ms, 10'000);
  EXPECT_DOUBLE_EQ(spec->budget, 0.0);
}

TEST(SloParser, ParsesBudgetAndDurations) {
  const auto spec = parse_slo_line("admit_rate >= 0.9 over 2m budget 5%");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->target, "admit_rate");
  EXPECT_TRUE(spec->stat.empty());
  EXPECT_EQ(spec->op, SloOp::kGe);
  EXPECT_EQ(spec->window_ms, 120'000);
  EXPECT_DOUBLE_EQ(spec->budget, 0.05);
  EXPECT_EQ(parse_slo_line("x < 1 over 500ms")->window_ms, 500);
  EXPECT_EQ(parse_slo_line("x < 1 over 1h")->window_ms, 3'600'000);
}

TEST(SloParser, SkipsBlanksAndComments) {
  EXPECT_FALSE(parse_slo_line("").has_value());
  EXPECT_FALSE(parse_slo_line("   ").has_value());
  EXPECT_FALSE(parse_slo_line("# a comment").has_value());
  const auto spec = parse_slo_line("x < 1 over 1s  # trailing comment");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->target, "x");
}

TEST(SloParser, RejectsMalformedLines) {
  EXPECT_THROW(parse_slo_line("x"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x == 1 over 1s"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < banana over 1s"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < 1"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < 1 over 10parsecs"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < 1 over -5s"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < 1 over 1s budget 5"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < 1 over 1s budget 150%"), std::invalid_argument);
  EXPECT_THROW(parse_slo_line("x < 1 over 1s extra"), std::invalid_argument);
}

TEST(SloParser, SpecFileReportsLineNumbers) {
  const auto specs = parse_slo_specs(
      "# latency\nonline.decision_us p99 < 100 over 1s\n\nadmit_rate >= 0.5 over 5s\n");
  ASSERT_EQ(specs.size(), 2u);
  try {
    parse_slo_specs("x < 1 over 1s\nbroken line here\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(SloTracker, EvaluatesOncePerWindow) {
  SloTracker tracker(parse_slo_specs("windows.lat.p99 < 100 over 1s"));
  tracker.offer(0, {{"windows.lat.p99", 50.0}});     // anchors the window
  tracker.offer(500, {{"windows.lat.p99", 200.0}});  // mid-window: no eval
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 0u);
  tracker.offer(1000, {{"windows.lat.p99", 50.0}});  // window elapsed: eval
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 1u);
  EXPECT_EQ(tracker.objectives()[0].windows_breached, 0u);
  EXPECT_TRUE(tracker.pass());
}

TEST(SloTracker, BreachAndBudgetAccounting) {
  // 25% of windows may breach.
  SloTracker tracker(parse_slo_specs("windows.lat.p99 < 100 over 1s budget 25%"));
  const double values[] = {50.0, 500.0, 60.0, 70.0};  // one breach in four
  tracker.offer(0, {{"windows.lat.p99", 10.0}});
  for (int i = 0; i < 4; ++i) {
    tracker.offer(1000 * (i + 1), {{"windows.lat.p99", values[i]}});
  }
  const SloObjective& o = tracker.objectives()[0];
  EXPECT_EQ(o.windows_evaluated, 4u);
  EXPECT_EQ(o.windows_breached, 1u);
  EXPECT_DOUBLE_EQ(o.breach_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(o.burn_rate(), 1.0);  // exactly at budget
  EXPECT_TRUE(o.pass());
  EXPECT_DOUBLE_EQ(o.worst, 500.0);
  ASSERT_EQ(o.breaches.size(), 1u);
  EXPECT_EQ(o.breaches[0].window_start_ms, 1000);
  EXPECT_EQ(o.breaches[0].window_end_ms, 2000);
  EXPECT_DOUBLE_EQ(o.breaches[0].observed, 500.0);
}

TEST(SloTracker, ZeroBudgetFailsOnSingleBreach) {
  SloTracker tracker(parse_slo_specs("windows.lat.p99 < 100 over 1s"));
  tracker.offer(0, {{"windows.lat.p99", 10.0}});
  tracker.offer(1000, {{"windows.lat.p99", 10.0}});
  tracker.offer(2000, {{"windows.lat.p99", 500.0}});
  EXPECT_FALSE(tracker.pass());
  EXPECT_TRUE(std::isinf(tracker.objectives()[0].burn_rate()));
  EXPECT_EQ(tracker.num_breached_windows(), 1u);
}

TEST(SloTracker, MissingValueSkipsInsteadOfBreaching) {
  SloTracker tracker(parse_slo_specs("windows.lat.p99 < 100 over 1s"));
  tracker.offer(0, {});
  tracker.offer(1000, {});  // empty window: no p99 key offered
  tracker.offer(2000, {{"windows.lat.p99", 50.0}});
  const SloObjective& o = tracker.objectives()[0];
  EXPECT_EQ(o.windows_skipped, 1u);
  EXPECT_EQ(o.windows_evaluated, 1u);
  EXPECT_TRUE(tracker.pass());
}

TEST(SloTracker, WindowedTargetResolvesViaStatKey) {
  // Spec written without the "windows." prefix still finds the sampler key.
  SloTracker tracker(parse_slo_specs("lat p99 < 100 over 1s"));
  tracker.offer(0, {{"windows.lat.p99", 10.0}});
  tracker.offer(1000, {{"windows.lat.p99", 10.0}});
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 1u);
}

TEST(SloTracker, BuiltinAdmitRateDifferencesCounters) {
  SloTracker tracker(parse_slo_specs("admit_rate >= 0.9 over 1s"));
  tracker.offer(0, {{"counters.online.requests", 100.0},
                    {"counters.online.admitted", 100.0}});
  // This window: 100 more requests, only 50 admitted -> rate 0.5, breach.
  tracker.offer(1000, {{"counters.online.requests", 200.0},
                       {"counters.online.admitted", 150.0}});
  const SloObjective& o = tracker.objectives()[0];
  EXPECT_EQ(o.windows_breached, 1u);
  EXPECT_DOUBLE_EQ(o.last, 0.5);
  // Quiet window (no new requests): skipped, not breached.
  tracker.offer(2000, {{"counters.online.requests", 200.0},
                       {"counters.online.admitted", 150.0}});
  EXPECT_EQ(tracker.objectives()[0].windows_skipped, 1u);
  EXPECT_EQ(tracker.objectives()[0].windows_breached, 1u);
}

TEST(SloTracker, CounterRateStatUsesWindowDelta) {
  SloTracker tracker(parse_slo_specs("online.requests rate >= 100 over 2s"));
  tracker.offer(0, {{"counters.online.requests", 0.0}});
  // 100 requests in 2 s = 50/s < 100 -> breach.
  tracker.offer(2000, {{"counters.online.requests", 100.0}});
  EXPECT_EQ(tracker.objectives()[0].windows_breached, 1u);
  EXPECT_DOUBLE_EQ(tracker.objectives()[0].last, 50.0);
  // 400 more in 2 s = 200/s -> good.
  tracker.offer(4000, {{"counters.online.requests", 500.0}});
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 2u);
  EXPECT_EQ(tracker.objectives()[0].windows_breached, 1u);
}

TEST(SloTracker, FinishEvaluatesTrailingPartialWindow) {
  SloTracker tracker(parse_slo_specs("windows.lat.p99 < 100 over 10s"));
  tracker.offer(0, {{"windows.lat.p99", 10.0}});
  tracker.offer(3000, {{"windows.lat.p99", 500.0}});  // window not elapsed
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 0u);
  tracker.finish(3000);
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 1u);
  EXPECT_EQ(tracker.objectives()[0].windows_breached, 1u);
  // finish is idempotent and freezes the tracker.
  tracker.finish(3000);
  tracker.offer(20'000, {{"windows.lat.p99", 10.0}});
  EXPECT_EQ(tracker.objectives()[0].windows_evaluated, 1u);
}

TEST(SloTracker, FinishUsesTrueElapsedTimeForRates) {
  SloTracker tracker(parse_slo_specs("req_s >= 100 over 10s"));
  tracker.offer(0, {{"counters.online.requests", 0.0}});
  // 500 ms of data, 100 requests -> 200/s; a naive full-window divisor
  // (10 s) would misread this as 10/s and false-breach.
  tracker.offer(500, {{"counters.online.requests", 100.0}});
  tracker.finish(500);
  const SloObjective& o = tracker.objectives()[0];
  ASSERT_EQ(o.windows_evaluated, 1u);
  EXPECT_DOUBLE_EQ(o.last, 200.0);
  EXPECT_TRUE(o.pass());
}

TEST(SloTracker, BreachesAreLoggedAsEvents) {
  EventLog log;
  ASSERT_TRUE(log.open("slo_breach_events.jsonl"));
  SloTracker tracker(parse_slo_specs("windows.lat.p99 < 100 over 1s"));
  tracker.set_event_log(&log);
  tracker.offer(0, {{"windows.lat.p99", 10.0}});
  tracker.offer(1000, {{"windows.lat.p99", 500.0}});
  log.close();
  std::ifstream in("slo_breach_events.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue doc = parse_json(line);
  EXPECT_EQ(doc.at("event").string, "slo_breach");
  EXPECT_DOUBLE_EQ(doc.at("observed").number, 500.0);
  EXPECT_DOUBLE_EQ(doc.at("threshold").number, 100.0);
  EXPECT_DOUBLE_EQ(doc.at("window_start_ms").number, 0.0);
  EXPECT_DOUBLE_EQ(doc.at("window_end_ms").number, 1000.0);
}

TEST(SloTracker, WriteJsonIsValidSloSchema) {
  SloTracker tracker(
      parse_slo_specs("windows.lat.p99 < 100 over 1s budget 10%\nreq_s >= 1 over 1s"));
  tracker.offer(0, {{"windows.lat.p99", 10.0}, {"counters.online.requests", 0.0}});
  tracker.offer(1000,
                {{"windows.lat.p99", 500.0}, {"counters.online.requests", 50.0}});
  tracker.finish(1000);
  std::ostringstream out;
  tracker.write_json(out);
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(report::validate_document(doc), "");
  EXPECT_EQ(doc.at("schema").string, "nfvm-slo-v1");
  EXPECT_FALSE(doc.at("pass").boolean);
  ASSERT_EQ(doc.at("objectives").array.size(), 2u);
}

}  // namespace
}  // namespace nfvm::obs
