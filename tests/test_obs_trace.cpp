#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs_test_util.h"

namespace nfvm::obs {
namespace {

/// Restores the global tracer to the stopped state even if a test fails.
struct TracerGuard {
  TracerGuard() { Tracer::global().start(); }
  ~TracerGuard() {
    Tracer::global().stop();
    Tracer::global().set_max_events(1'000'000);
  }
};

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  // Do not start the tracer: spans must be no-ops.
  const std::size_t before = Tracer::global().num_events();
  {
    NFVM_SPAN("test/should_not_record");
  }
  EXPECT_EQ(Tracer::global().num_events(), before);
}

TEST(Tracer, StartClearsBufferAndRecordsSpans) {
  TracerGuard guard;
  {
    NFVM_SPAN("test/outer");
  }
#if NFVM_OBS
  ASSERT_EQ(Tracer::global().num_events(), 1u);
  const auto events = Tracer::global().snapshot();
  EXPECT_STREQ(events[0].name, "test/outer");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
  EXPECT_EQ(events[0].depth, 1u);
#else
  EXPECT_EQ(Tracer::global().num_events(), 0u);
#endif
  Tracer::global().start();  // restarting clears
  EXPECT_EQ(Tracer::global().num_events(), 0u);
}

#if NFVM_OBS
TEST(Tracer, NestedSpansCarryDepthAndContainment) {
  TracerGuard guard;
  {
    NFVM_SPAN("test/outer");
    {
      NFVM_SPAN("test/inner");
    }
  }
  Tracer::global().stop();
  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans land in completion order: the inner one closes first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test/inner");
  EXPECT_STREQ(outer.name, "test/outer");
  EXPECT_EQ(outer.depth, 1u);
  EXPECT_EQ(inner.depth, 2u);
  EXPECT_EQ(inner.tid, outer.tid);
  // The inner interval nests inside the outer one.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST(Tracer, ChromeTraceExportIsWellFormed) {
  TracerGuard guard;
  {
    NFVM_SPAN("test/export \"quoted\"");
    {
      NFVM_SPAN("test/child");
    }
  }
  Tracer::global().stop();
  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);

  const test::JsonValue doc = test::parse_json(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("cat").string, "nfvm");
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
  }
  EXPECT_EQ(events[0].at("name").string, "test/child");
  EXPECT_EQ(events[1].at("name").string, "test/export \"quoted\"");
}

TEST(Tracer, EventCapCountsDropsInsteadOfGrowing) {
  TracerGuard guard;
  Tracer::global().set_max_events(2);
  for (int i = 0; i < 5; ++i) {
    NFVM_SPAN("test/capped");
  }
  EXPECT_EQ(Tracer::global().num_events(), 2u);
  EXPECT_EQ(Tracer::global().dropped(), 3u);

  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const test::JsonValue doc = test::parse_json(out.str());
  EXPECT_EQ(doc.at("nfvmDroppedEvents").number, 3.0);
}

TEST(Tracer, SpanOpenAcrossStopIsDropped) {
  TracerGuard guard;
  {
    SpanScope span("test/interrupted");
    Tracer::global().stop();
  }  // closes after stop: must not record a negative-duration event
  EXPECT_EQ(Tracer::global().num_events(), 0u);
}
#endif  // NFVM_OBS

TEST(JsonLine, BuildsFlatObjectInInsertionOrder) {
  JsonLine line;
  line.field("event", "request")
      .field("index", std::size_t{3})
      .field("cost", 2.5)
      .field("admitted", true);
  EXPECT_EQ(line.str(),
            "{\"event\":\"request\",\"index\":3,\"cost\":2.5,\"admitted\":true}");
  const test::JsonValue doc = test::parse_json(line.str());
  EXPECT_EQ(doc.at("event").string, "request");
  EXPECT_TRUE(doc.at("admitted").boolean);
}

TEST(EventLog, WritesOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "/nfvm_event_log_test.jsonl";
  {
    EventLog log;
    ASSERT_TRUE(log.open(path));
    ASSERT_TRUE(log.is_open());
    JsonLine a;
    a.field("event", "request").field("index", std::size_t{0});
    JsonLine b;
    b.field("event", "request").field("index", std::size_t{1});
    log.write(a);
    log.write(b);
    EXPECT_EQ(log.lines_written(), 2u);
    log.close();
    EXPECT_FALSE(log.is_open());
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(test::parse_json(lines[0]).at("index").number, 0.0);
  EXPECT_EQ(test::parse_json(lines[1]).at("index").number, 1.0);
  std::remove(path.c_str());
}

TEST(EventLog, ClosedLogSwallowsWrites) {
  EventLog log;
  EXPECT_FALSE(log.is_open());
  JsonLine line;
  line.field("event", "ignored");
  log.write(line);  // must not crash
  EXPECT_EQ(log.lines_written(), 0u);
}

TEST(Log, LevelParsingAndThresholds) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_FALSE(parse_log_level("verbose").has_value());

  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  set_log_level(saved);
}

}  // namespace
}  // namespace nfvm::obs
