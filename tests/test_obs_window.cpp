// Windowed-histogram unit tests. Every test injects its own clock (explicit
// now_ms arguments) - rotation and decay are exercised by arithmetic, not
// sleeps, so the suite is deterministic at any machine speed.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"
#include "obs/window.h"

namespace nfvm::obs {
namespace {

WindowOptions small_window() {
  WindowOptions options;
  options.window_ms = 1000;
  options.slots = 4;  // 250 ms per slot
  options.half_life_ms = 1000;
  return options;
}

TEST(SlidingHdrHistogram, EmptyWindowReadsZeroAndNaN) {
  SlidingHdrHistogram h(small_window());
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_DOUBLE_EQ(h.sum(0), 0.0);
  EXPECT_TRUE(std::isnan(h.quantile(0.5, 0)));
  EXPECT_TRUE(h.snapshot_buckets(0).empty());
}

TEST(SlidingHdrHistogram, AccumulatesWithinWindow) {
  SlidingHdrHistogram h(small_window());
  h.observe(100.0, 0);
  h.observe(200.0, 300);
  h.observe(400.0, 600);
  EXPECT_EQ(h.count(600), 3u);
  EXPECT_DOUBLE_EQ(h.sum(600), 700.0);
  EXPECT_DOUBLE_EQ(h.min(600), 100.0);
  EXPECT_DOUBLE_EQ(h.max(600), 400.0);
  // p50 of {100, 200, 400} is the middle sample, within HDR bucket error.
  EXPECT_NEAR(h.quantile(0.5, 600), 200.0, 200.0 / 64);
}

TEST(SlidingHdrHistogram, OldSamplesRotateOut) {
  SlidingHdrHistogram h(small_window());
  h.observe(100.0, 0);     // slot epoch 0: alive until now_ms > 1000
  h.observe(900.0, 900);   // slot epoch 3
  EXPECT_EQ(h.count(900), 2u);
  // At t=1100 the window is (100, 1100]: slot 0 (covering [0, 250)) is
  // partially stale; the implementation drops a slot only once the whole
  // slot interval left the window, so it is still counted here.
  EXPECT_EQ(h.count(1100), 2u);
  // At t=1300 slot 0's interval [0, 250) is fully outside (300, 1300].
  EXPECT_EQ(h.count(1300), 1u);
  EXPECT_DOUBLE_EQ(h.sum(1300), 900.0);
  // Far future: everything expired, and the ring reports exactly empty.
  EXPECT_EQ(h.count(10'000), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.99, 10'000)));
}

TEST(SlidingHdrHistogram, SlotReuseClearsStaleCounts) {
  SlidingHdrHistogram h(small_window());
  h.observe(50.0, 0);
  // 2000 ms later the ring wrapped twice; the slot that held t=0 must have
  // been cleared before accepting the new sample.
  h.observe(70.0, 2000);
  EXPECT_EQ(h.count(2000), 1u);
  EXPECT_DOUBLE_EQ(h.sum(2000), 70.0);
}

TEST(SlidingHdrHistogram, AdvanceWithoutObserveExpires) {
  SlidingHdrHistogram h(small_window());
  h.observe(10.0, 0);
  h.advance(5000);
  EXPECT_EQ(h.count(5000), 0u);
}

TEST(SlidingHdrHistogram, QuantilesMatchHdrWithinBucketError) {
  SlidingHdrHistogram h(small_window());
  HdrHistogram reference;
  for (int i = 1; i <= 1000; ++i) {
    h.observe(static_cast<double>(i), 500);
    reference.observe(static_cast<double>(i));
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(h.quantile(q, 500), reference.quantile(q),
                reference.quantile(q) / 64)
        << "q=" << q;
  }
}

TEST(DecayingHdrHistogram, HalfLifeHalvesTheWeight) {
  WindowOptions options = small_window();
  DecayingHdrHistogram h(options);
  h.observe(100.0, 0);
  h.observe(100.0, 0);
  EXPECT_NEAR(h.weight(0), 2.0, 1e-9);
  // One full half-life: eight ticks of 2^(-1/8) compose to exactly 1/2.
  EXPECT_NEAR(h.weight(options.half_life_ms), 1.0, 1e-9);
  EXPECT_NEAR(h.weight(2 * options.half_life_ms), 0.5, 1e-9);
}

TEST(DecayingHdrHistogram, RecentSamplesDominateQuantiles) {
  WindowOptions options = small_window();
  DecayingHdrHistogram h(options);
  // Old regime: fast decisions...
  for (int i = 0; i < 100; ++i) h.observe(10.0, 0);
  // ...then, ten half-lives later (old weight ~0.1), a slow regime.
  const std::int64_t later = 10 * options.half_life_ms;
  for (int i = 0; i < 100; ++i) h.observe(1000.0, later);
  EXPECT_NEAR(h.quantile(0.5, later), 1000.0, 1000.0 / 64);
  // An undecayed view would put p50 between the regimes (equal counts).
}

TEST(DecayingHdrHistogram, IdleInstrumentFlushesToEmpty) {
  DecayingHdrHistogram h(small_window());
  h.observe(5.0, 0);
  EXPECT_GT(h.weight(0), 0.0);
  // ~40 half-lives decays 1.0 below the 1e-9 negligible-weight flush.
  const std::int64_t far = 40 * h.half_life_ms();
  EXPECT_DOUBLE_EQ(h.weight(far), 0.0);
  EXPECT_TRUE(std::isnan(h.quantile(0.5, far)));
}

TEST(WindowedHistogram, SnapshotCombinesBothViews) {
  WindowedHistogram h(small_window());
  h.observe(100.0, 0);
  h.observe(300.0, 100);
  const WindowSnapshot snap = h.snapshot(200);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 400.0);
  EXPECT_DOUBLE_EQ(snap.min, 100.0);
  EXPECT_DOUBLE_EQ(snap.max, 300.0);
  EXPECT_DOUBLE_EQ(snap.mean, 200.0);
  EXPECT_NEAR(snap.decayed_count, 2.0, 0.2);
  EXPECT_NEAR(snap.p90, 300.0, 300.0 / 64);
  EXPECT_NEAR(snap.decayed_p90, 300.0, 300.0 / 64);
}

TEST(WindowedHistogram, WindowEmptiesButDecayRemembers) {
  WindowOptions options = small_window();
  options.half_life_ms = 60'000;  // slow decay vs. the 1 s window
  WindowedHistogram h(options);
  h.observe(100.0, 0);
  const WindowSnapshot snap = h.snapshot(5000);
  // The sliding window forgot the sample; the decaying view still holds
  // nearly all of its weight.
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(std::isnan(snap.p99));
  EXPECT_GT(snap.decayed_count, 0.9);
  EXPECT_NEAR(snap.decayed_p50, 100.0, 100.0 / 64);
}

TEST(WindowedHistogram, ResetClearsBothViews) {
  WindowedHistogram h(small_window());
  h.observe(100.0, 0);
  h.reset();
  const WindowSnapshot snap = h.snapshot(0);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.decayed_count, 0.0);
}

TEST(Registry, WindowedInstrumentsAreStableAndResettable) {
  Registry registry;
  WindowedHistogram* h = registry.windowed_histogram("test.window");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(registry.windowed_histogram("test.window"), h);
  h->observe(10.0, 0);
  EXPECT_EQ(h->snapshot(0).count, 1u);
  registry.reset_values();
  EXPECT_EQ(h->snapshot(0).count, 0u);
  EXPECT_EQ(registry.windowed_instruments().size(), 1u);
}

TEST(Registry, WindowOptionsApplyToNewInstruments) {
  Registry registry;
  WindowOptions options;
  options.window_ms = 2000;
  options.slots = 2;
  registry.set_window_options(options);
  WindowedHistogram* h = registry.windowed_histogram("test.window");
  EXPECT_EQ(h->options().window_ms, 2000);
  EXPECT_EQ(h->options().slots, 2u);
}

TEST(WindowClock, IsMonotoneNonNegative) {
  const std::int64_t a = window_now_ms();
  const std::int64_t b = window_now_ms();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace nfvm::obs
