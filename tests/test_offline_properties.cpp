// Property sweeps validating Theorem 1 empirically: for K = 1 the true
// optimum decomposes exactly (shortest path to server + chain cost + exact
// Steiner tree below the server), giving an oracle to check the 2K ratio.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "graph/dijkstra.h"
#include "graph/steiner.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

struct Instance {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;
};

Instance random_instance(std::uint64_t seed, std::size_t n, std::size_t dests) {
  util::Rng rng(seed);
  Instance inst;
  inst.topo = topo::make_waxman(n, rng);
  inst.costs = random_costs(inst.topo, rng);
  inst.request.id = seed;
  inst.request.bandwidth_mbps = rng.uniform_real(50, 200);
  inst.request.chain = nfv::random_service_chain(rng, 1, 3);
  const auto picks = rng.sample_without_replacement(n, dests + 1);
  inst.request.source = static_cast<graph::VertexId>(picks[0]);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    inst.request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
  }
  return inst;
}

/// Exact optimum for K = 1: min_v [ sp(s,v) + c_v(SC) + exactSteiner({v}∪D) ]
/// in the cost-weighted (c_e * b_k) graph.
double exact_optimum_k1(const Instance& inst) {
  const double b = inst.request.bandwidth_mbps;
  graph::Graph cw(inst.topo.num_switches());
  for (graph::EdgeId e = 0; e < inst.topo.num_links(); ++e) {
    const graph::Edge& ed = inst.topo.graph.edge(e);
    cw.add_edge(ed.u, ed.v, inst.costs.edge_cost(e, b));
  }
  const graph::ShortestPaths sp = graph::dijkstra(cw, inst.request.source);
  const double demand = inst.request.compute_demand_mhz();

  double best = std::numeric_limits<double>::infinity();
  for (graph::VertexId v : inst.topo.servers) {
    std::vector<graph::VertexId> terminals{v};
    terminals.insert(terminals.end(), inst.request.destinations.begin(),
                     inst.request.destinations.end());
    const graph::SteinerResult st = graph::exact_steiner(cw, terminals);
    if (!st.connected || !sp.reachable(v)) continue;
    best = std::min(best, sp.dist[v] + inst.costs.server_cost(v, demand) + st.weight);
  }
  return best;
}

/// Honest physical cost of a pseudo-multicast tree: every traversal pays,
/// every server instance pays.
double physical_cost(const Instance& inst, const PseudoMulticastTree& tree) {
  double cost = 0.0;
  for (const auto& [edge, mult] : tree.edge_uses) {
    cost += inst.costs.edge_cost(edge, inst.request.bandwidth_mbps) * mult;
  }
  const double demand = inst.request.compute_demand_mhz();
  for (graph::VertexId v : tree.servers) {
    cost += inst.costs.server_cost(v, demand);
  }
  return cost;
}

struct Case {
  std::uint64_t seed;
  std::size_t n;
  std::size_t dests;
};

class OfflineRatioTest : public ::testing::TestWithParam<Case> {};

TEST_P(OfflineRatioTest, ApproMultiK1WithinTwiceOptimal) {
  const Case& c = GetParam();
  const Instance inst = random_instance(c.seed, c.n, c.dests);

  ApproMultiOptions opts;
  opts.max_servers = 1;
  const OfflineSolution sol = appro_multi(inst.topo, inst.costs, inst.request, opts);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;

  const double opt = exact_optimum_k1(inst);
  ASSERT_TRUE(std::isfinite(opt));
  EXPECT_LE(sol.tree.cost, 2.0 * opt + 1e-6)
      << "2-approximation guarantee violated (cost " << sol.tree.cost
      << " vs OPT " << opt << ")";
  // The algorithm can never beat the exact optimum by more than the paper's
  // zero-cost source-link correction, which is at most one link's cost; in
  // particular the honest physical cost is >= OPT.
  EXPECT_GE(physical_cost(inst, sol.tree) + 1e-6, opt);
}

TEST_P(OfflineRatioTest, AlgOneServerWithinThriceOptimal) {
  // The destination-MST baseline: MST expansion <= 2 Steiner(D) and the
  // server attachment <= Steiner({v} ∪ D), so the total stays within 3 OPT.
  const Case& c = GetParam();
  const Instance inst = random_instance(c.seed, c.n, c.dests);
  const OfflineSolution sol = alg_one_server(inst.topo, inst.costs, inst.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  const double opt = exact_optimum_k1(inst);
  ASSERT_TRUE(std::isfinite(opt));
  EXPECT_LE(sol.tree.cost, 3.0 * opt + 1e-6);
  EXPECT_GE(sol.tree.cost + 1e-6, opt);
}

TEST_P(OfflineRatioTest, HigherKStaysAboveSteinerLowerBound) {
  // Any pseudo-multicast tree's bandwidth cost alone is at least the exact
  // Steiner tree over {s} ∪ D (its used edge set connects them).
  const Case& c = GetParam();
  const Instance inst = random_instance(c.seed, c.n, c.dests);

  graph::Graph cw(inst.topo.num_switches());
  for (graph::EdgeId e = 0; e < inst.topo.num_links(); ++e) {
    const graph::Edge& ed = inst.topo.graph.edge(e);
    cw.add_edge(ed.u, ed.v, inst.costs.edge_cost(e, inst.request.bandwidth_mbps));
  }
  std::vector<graph::VertexId> terminals{inst.request.source};
  terminals.insert(terminals.end(), inst.request.destinations.begin(),
                   inst.request.destinations.end());
  const graph::SteinerResult lb = graph::exact_steiner(cw, terminals);
  ASSERT_TRUE(lb.connected);

  ApproMultiOptions opts;
  opts.max_servers = 3;
  const OfflineSolution sol = appro_multi(inst.topo, inst.costs, inst.request, opts);
  ASSERT_TRUE(sol.admitted);
  EXPECT_GE(physical_cost(inst, sol.tree) + 1e-6, lb.weight);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, OfflineRatioTest,
    ::testing::Values(Case{1, 12, 2}, Case{2, 12, 3}, Case{3, 14, 2},
                      Case{4, 14, 3}, Case{5, 16, 3}, Case{6, 16, 4},
                      Case{7, 18, 2}, Case{8, 18, 4}, Case{9, 20, 3},
                      Case{10, 20, 4}, Case{11, 22, 3}, Case{12, 24, 4},
                      Case{13, 15, 5}, Case{14, 17, 2}, Case{15, 19, 3}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(OfflineProperty, ApproMultiDeterministic) {
  const Instance inst = random_instance(77, 20, 3);
  const OfflineSolution a = appro_multi(inst.topo, inst.costs, inst.request);
  const OfflineSolution b = appro_multi(inst.topo, inst.costs, inst.request);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_DOUBLE_EQ(a.tree.cost, b.tree.cost);
  EXPECT_EQ(a.tree.servers, b.tree.servers);
  EXPECT_EQ(a.tree.edge_uses, b.tree.edge_uses);
}

TEST(OfflineProperty, ReportedCostMatchesAuxiliaryWeights) {
  // Without the zero-cost correction firing (source not adjacent to any
  // server in the best combo), the reported cost equals the honest physical
  // cost. Verify on instances where we force non-adjacency.
  for (std::uint64_t seed : {301u, 302u, 303u, 304u}) {
    const Instance inst = random_instance(seed, 18, 3);
    ApproMultiOptions opts;
    opts.max_servers = 2;
    const OfflineSolution sol =
        appro_multi(inst.topo, inst.costs, inst.request, opts);
    ASSERT_TRUE(sol.admitted);
    bool source_adjacent_to_used_server = false;
    for (graph::VertexId v : sol.tree.servers) {
      if (inst.topo.graph.find_edge(inst.request.source, v).has_value()) {
        source_adjacent_to_used_server = true;
      }
    }
    if (source_adjacent_to_used_server) continue;
    // Reported cost may still differ from the physical cost if the virtual
    // paths overlap tree edges; physical is then strictly larger.
    EXPECT_GE(physical_cost(inst, sol.tree) + 1e-9, sol.tree.cost);
  }
}

}  // namespace
}  // namespace nfvm::core
