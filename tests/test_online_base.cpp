// Contract tests of the OnlineAlgorithm base class and the simulator's
// failure-injection paths, using a controllable fake algorithm.
#include <gtest/gtest.h>

#include "core/online.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology path_topology() {
  topo::Topology t;
  t.name = "path4";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {2};
  t.link_bandwidth = {1000, 1000, 1000};
  t.server_compute = {0, 0, 8000, 0};
  return t;
}

nfv::Request simple_request(std::uint64_t id = 1) {
  nfv::Request r;
  r.id = id;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  return r;
}

/// Fake algorithm with scripted decisions.
class FakeAlgorithm final : public OnlineAlgorithm {
 public:
  enum class Mode { kReject, kAdmitValid, kAdmitOverCommitted, kAdmitBogusTree };

  explicit FakeAlgorithm(const topo::Topology& topo) : OnlineAlgorithm(topo) {}

  std::string_view name() const override { return "fake"; }
  Mode mode = Mode::kReject;

 protected:
  AdmissionDecision try_admit(const nfv::Request& request) override {
    AdmissionDecision d;
    if (mode == Mode::kReject) {
      d.reject_reason = "scripted rejection";
      return d;
    }
    d.admitted = true;
    d.tree.source = request.source;
    d.tree.servers = {2};
    d.tree.cost = 3.0;
    d.tree.edge_uses = {{0, 1}, {1, 1}, {2, 1}};
    DestinationRoute route;
    route.destination = 3;
    route.server = 2;
    route.walk = {0, 1, 2, 3};
    route.server_index = 2;
    d.tree.routes = {route};
    if (mode == Mode::kAdmitBogusTree) {
      d.tree.routes[0].walk = {0, 3};  // non-adjacent hop
    }
    d.footprint.bandwidth = {{0, request.bandwidth_mbps}};
    d.footprint.compute = {{2, request.compute_demand_mhz()}};
    if (mode == Mode::kAdmitOverCommitted) {
      d.footprint.bandwidth = {{0, 1e9}};  // cannot fit
    }
    return d;
  }
};

TEST(OnlineBase, CountersTrackDecisions) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kReject;
  algo.process(simple_request(1));
  algo.mode = FakeAlgorithm::Mode::kAdmitValid;
  algo.process(simple_request(2));
  algo.process(simple_request(3));
  EXPECT_EQ(algo.num_admitted(), 2u);
  EXPECT_EQ(algo.num_rejected(), 1u);
  EXPECT_EQ(algo.num_processed(), 3u);
}

TEST(OnlineBase, AdmissionAllocatesFootprint) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitValid;
  algo.process(simple_request());
  EXPECT_NEAR(algo.resources().residual_bandwidth(0), 900.0, 1e-9);
  EXPECT_LT(algo.resources().residual_compute(2), 8000.0);
}

TEST(OnlineBase, RejectionLeavesStateUntouched) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kReject;
  const AdmissionDecision d = algo.process(simple_request());
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reject_reason, "scripted rejection");
  EXPECT_DOUBLE_EQ(algo.resources().total_allocated_bandwidth(), 0.0);
}

TEST(OnlineBase, OverCommittedFootprintThrowsInsteadOfOverbooking) {
  // Contract violation by try_admit: process() must throw (allocate checks)
  // rather than drive residuals negative.
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitOverCommitted;
  EXPECT_THROW(algo.process(simple_request()), std::runtime_error);
  EXPECT_DOUBLE_EQ(algo.resources().total_allocated_bandwidth(), 0.0);
}

TEST(OnlineBase, MalformedRequestRejectedBeforeTryAdmit) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitValid;
  nfv::Request r = simple_request();
  r.destinations = {0};
  EXPECT_THROW(algo.process(r), std::invalid_argument);
  EXPECT_EQ(algo.num_processed(), 0u);
}

TEST(OnlineBase, ReleaseReturnsResources) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitValid;
  const AdmissionDecision d = algo.process(simple_request());
  algo.release(d.footprint);
  EXPECT_NEAR(algo.resources().total_allocated_bandwidth(), 0.0, 1e-9);
}

TEST(OnlineBase, SimulatorDetectsBogusTrees) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitBogusTree;
  const std::vector<nfv::Request> requests{simple_request()};
  EXPECT_THROW(sim::run_online(algo, requests), std::logic_error);
}

TEST(OnlineBase, SimulatorValidationCanBeDisabled) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitBogusTree;
  const std::vector<nfv::Request> requests{simple_request()};
  sim::SimulatorOptions opts;
  opts.validate_trees = false;
  EXPECT_NO_THROW(sim::run_online(algo, requests, opts));
}

TEST(OnlineBase, DynamicSimulatorDetectsBogusTrees) {
  const topo::Topology t = path_topology();
  FakeAlgorithm algo(t);
  algo.mode = FakeAlgorithm::Mode::kAdmitBogusTree;
  std::vector<sim::TimedRequest> workload(1);
  workload[0].request = simple_request();
  workload[0].arrival_time = 0.0;
  workload[0].duration = 1.0;
  EXPECT_THROW(sim::run_online_dynamic(algo, workload), std::logic_error);
}

}  // namespace
}  // namespace nfvm::core
