#include "core/online_cp.h"

#include <gtest/gtest.h>

#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology path_topology() {
  topo::Topology t;
  t.name = "path5";
  t.graph = graph::Graph(5);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.graph.add_edge(3, 4, 1.0);
  t.servers = {2, 4};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 0, 8000, 0, 8000};
  return t;
}

nfv::Request simple_request(std::uint64_t id = 1) {
  nfv::Request r;
  r.id = id;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  return r;
}

TEST(OnlineCp, PaperDefaultParameters) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  EXPECT_DOUBLE_EQ(algo.alpha(), 10.0);  // 2|V| = 10
  EXPECT_DOUBLE_EQ(algo.beta(), 10.0);
  EXPECT_DOUBLE_EQ(algo.sigma_v(), 4.0);  // |V| - 1
  EXPECT_DOUBLE_EQ(algo.sigma_e(), 4.0);
  EXPECT_EQ(algo.name(), "Online_CP");
}

TEST(OnlineCp, CustomParameters) {
  const topo::Topology t = path_topology();
  OnlineCpOptions opts;
  opts.alpha = 4.0;
  opts.beta = 8.0;
  opts.sigma_v = 2.0;
  opts.sigma_e = 3.0;
  OnlineCp algo(t, opts);
  EXPECT_DOUBLE_EQ(algo.alpha(), 4.0);
  EXPECT_DOUBLE_EQ(algo.beta(), 8.0);
  EXPECT_DOUBLE_EQ(algo.sigma_v(), 2.0);
  EXPECT_DOUBLE_EQ(algo.sigma_e(), 3.0);
}

TEST(OnlineCp, AdmitsFirstRequestAndAllocates) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  const nfv::Request r = simple_request();
  const AdmissionDecision d = algo.process(r);
  ASSERT_TRUE(d.admitted) << d.reject_reason;
  EXPECT_EQ(algo.num_admitted(), 1u);
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(t.graph, r, d.tree, &error)) << error;
  // Resources were charged.
  EXPECT_GT(algo.resources().total_allocated_bandwidth(), 0.0);
  EXPECT_GT(algo.resources().total_allocated_compute(), 0.0);
}

TEST(OnlineCp, FirstRequestHasZeroWeightCost) {
  // On an empty network every weight is 0, so the chosen tree costs 0.
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  const AdmissionDecision d = algo.process(simple_request());
  ASSERT_TRUE(d.admitted);
  EXPECT_NEAR(d.tree.cost, 0.0, 1e-12);
}

TEST(OnlineCp, UsesSingleServer) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  const AdmissionDecision d = algo.process(simple_request());
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(d.tree.servers.size(), 1u);  // K = 1 online
}

TEST(OnlineCp, RejectsWhenComputeExhausted) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  nfv::Request big = simple_request();
  // IDS at 200 Mbps = 640 MHz per request; 8000 MHz per server.
  big.chain = nfv::ServiceChain({nfv::NetworkFunction::kIds});
  big.bandwidth_mbps = 200.0;
  std::size_t admitted = 0;
  for (std::uint64_t k = 0; k < 60; ++k) {
    big.id = k;
    if (algo.process(big).admitted) ++admitted;
  }
  // 2 servers x 8000 MHz / 640 MHz = 25 chain instances at most; bandwidth
  // may bind earlier, and the admission thresholds earlier still.
  EXPECT_LE(admitted, 25u);
  EXPECT_GT(algo.num_rejected(), 0u);
}

TEST(OnlineCp, RejectsWhenLinkSaturated) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  nfv::Request r = simple_request();
  // Link 0-1 is the only way out of the source: 1000/100 = 10 copies max.
  std::size_t admitted = 0;
  for (std::uint64_t k = 0; k < 20; ++k) {
    r.id = k;
    if (algo.process(r).admitted) ++admitted;
  }
  EXPECT_LE(admitted, 10u);
}

TEST(OnlineCp, RejectReasonProvided) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  nfv::Request r = simple_request();
  r.bandwidth_mbps = 2000.0;  // exceeds every link capacity
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  const AdmissionDecision d = algo.process(r);
  EXPECT_FALSE(d.admitted);
  EXPECT_FALSE(d.reject_reason.empty());
}

TEST(OnlineCp, MalformedRequestThrows) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  nfv::Request r = simple_request();
  r.destinations.clear();
  EXPECT_THROW(algo.process(r), std::invalid_argument);
}

TEST(OnlineCp, BackhaulChargedOnDetour) {
  // Source 0, destination 1, server only at 3 (path 0-1-2-3): processed
  // traffic returns 3 -> 1, so links 1-2, 2-3 carry two traversals.
  topo::Topology t;
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {3};
  t.link_bandwidth = {1000, 1000, 1000};
  t.server_compute = {0, 0, 0, 8000};

  OnlineCp algo(t);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {1};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  const AdmissionDecision d = algo.process(r);
  ASSERT_TRUE(d.admitted) << d.reject_reason;
  for (const auto& [edge, mult] : d.tree.edge_uses) {
    if (edge == 0) {
      EXPECT_EQ(mult, 1);
    }
    if (edge == 1 || edge == 2) {
      EXPECT_EQ(mult, 2) << "edge " << edge;
    }
  }
  // Residuals reflect the double traversal.
  EXPECT_NEAR(algo.resources().residual_bandwidth(1), 800.0, 1e-6);
  EXPECT_NEAR(algo.resources().residual_bandwidth(0), 900.0, 1e-6);
}

TEST(OnlineCp, ReleaseRestoresResources) {
  const topo::Topology t = path_topology();
  OnlineCp algo(t);
  const AdmissionDecision d = algo.process(simple_request());
  ASSERT_TRUE(d.admitted);
  algo.release(d.footprint);
  EXPECT_NEAR(algo.resources().total_allocated_bandwidth(), 0.0, 1e-6);
  EXPECT_NEAR(algo.resources().total_allocated_compute(), 0.0, 1e-6);
}

TEST(OnlineCp, PrefersLessLoadedResources) {
  // Two parallel routes 0->3: via server 1 (top) or server 2 (bottom).
  // After loading the top path, the next request should go bottom.
  topo::Topology t;
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);  // e0 top
  t.graph.add_edge(1, 3, 1.0);  // e1 top
  t.graph.add_edge(0, 2, 1.0);  // e2 bottom
  t.graph.add_edge(2, 3, 1.0);  // e3 bottom
  t.servers = {1, 2};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 8000, 8000, 0};

  OnlineCp algo(t);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const AdmissionDecision first = algo.process(r);
  ASSERT_TRUE(first.admitted);
  const graph::VertexId first_server = first.tree.servers[0];
  r.id = 2;
  const AdmissionDecision second = algo.process(r);
  ASSERT_TRUE(second.admitted);
  EXPECT_NE(second.tree.servers[0], first_server)
      << "exponential weights should steer the second request to the unloaded path";
}

TEST(OnlineCp, LinearWeightAblationRuns) {
  const topo::Topology t = path_topology();
  OnlineCpOptions opts;
  opts.linear_weights = true;
  OnlineCp algo(t, opts);
  EXPECT_EQ(algo.name(), "Online_CP(linear)");
  const AdmissionDecision d = algo.process(simple_request());
  EXPECT_TRUE(d.admitted);
}

TEST(OnlineCp, ThresholdRejectionTriggersBeforePhysicalExhaustion) {
  // With tiny sigma the algorithm must start rejecting while resources
  // physically remain.
  const topo::Topology t = path_topology();
  OnlineCpOptions opts;
  opts.sigma_v = 0.01;
  opts.sigma_e = 0.01;
  OnlineCp algo(t, opts);
  nfv::Request r = simple_request();
  ASSERT_TRUE(algo.process(r).admitted);  // empty network: weights all 0
  r.id = 2;
  const AdmissionDecision d = algo.process(r);
  EXPECT_FALSE(d.admitted);
  EXPECT_GT(algo.resources().residual_bandwidth(0), 500.0);
}

TEST(OnlineCp, SequenceOnRandomTopologyAllTreesValid) {
  util::Rng rng(404);
  const topo::Topology t = topo::make_waxman(50, rng);
  OnlineCp algo(t);
  sim::RequestGenerator gen(t, rng);
  const auto requests = gen.sequence(60);
  const sim::SimulationMetrics m = sim::run_online(algo, requests);
  EXPECT_EQ(m.num_requests, 60u);
  EXPECT_GT(m.num_admitted, 0u);
  EXPECT_EQ(m.num_admitted + m.num_rejected, 60u);
}

}  // namespace
}  // namespace nfvm::core
