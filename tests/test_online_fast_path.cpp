// The online admission fast path: trace equivalence between the incremental
// (patched weighted view + shared-closure scan) and legacy rebuild paths,
// OnlineWeightedView patch/era semantics, keyed SpCache invalidation, the
// table-driven KMB entry points, and RejectTracker precedence.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/online.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_view.h"
#include "graph/dijkstra.h"
#include "graph/steiner.h"
#include "nfv/resources.h"
#include "sim/request_gen.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

// ---------------------------------------------------------------------------
// Trace equivalence: fast path vs rebuild path
// ---------------------------------------------------------------------------

void expect_same_decision(const AdmissionDecision& a, const AdmissionDecision& b,
                          std::size_t index) {
  ASSERT_EQ(a.admitted, b.admitted) << "request " << index;
  EXPECT_EQ(a.reject_reason, b.reject_reason) << "request " << index;
  EXPECT_EQ(a.reject_cause, b.reject_cause) << "request " << index;
  EXPECT_EQ(a.tree.source, b.tree.source) << "request " << index;
  EXPECT_EQ(a.tree.servers, b.tree.servers) << "request " << index;
  EXPECT_EQ(a.tree.cost, b.tree.cost) << "request " << index;  // bit-exact
  EXPECT_EQ(a.tree.edge_uses, b.tree.edge_uses) << "request " << index;
  ASSERT_EQ(a.tree.routes.size(), b.tree.routes.size()) << "request " << index;
  for (std::size_t r = 0; r < a.tree.routes.size(); ++r) {
    EXPECT_EQ(a.tree.routes[r].destination, b.tree.routes[r].destination);
    EXPECT_EQ(a.tree.routes[r].server, b.tree.routes[r].server);
    EXPECT_EQ(a.tree.routes[r].walk, b.tree.routes[r].walk);
    EXPECT_EQ(a.tree.routes[r].server_index, b.tree.routes[r].server_index);
  }
  EXPECT_EQ(a.footprint.bandwidth, b.footprint.bandwidth) << "request " << index;
  EXPECT_EQ(a.footprint.compute, b.footprint.compute) << "request " << index;
  EXPECT_EQ(a.footprint.table_entries, b.footprint.table_entries)
      << "request " << index;
}

/// Feeds the same request sequence (with periodic departures) through both
/// algorithms and requires byte-identical decision streams.
template <typename Algo>
void run_trace_equivalence(Algo& fast, Algo& rebuild, std::size_t num_requests) {
  util::Rng workload(515);
  sim::RequestGenerator gen(fast.topology(), workload);
  const std::vector<nfv::Request> requests = gen.sequence(num_requests);

  std::vector<nfv::Footprint> admitted_fast;
  std::vector<nfv::Footprint> admitted_rebuild;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const AdmissionDecision df = fast.process(requests[i]);
    const AdmissionDecision dr = rebuild.process(requests[i]);
    expect_same_decision(df, dr, i);
    if (df.admitted) {
      admitted_fast.push_back(df.footprint);
      admitted_rebuild.push_back(dr.footprint);
    }
    // Departures: release the oldest still-held footprint every 7 requests,
    // exercising the era reset (cache drop + weight re-patch) mid-sequence.
    if (i % 7 == 6 && !admitted_fast.empty()) {
      fast.release(admitted_fast.front());
      rebuild.release(admitted_rebuild.front());
      admitted_fast.erase(admitted_fast.begin());
      admitted_rebuild.erase(admitted_rebuild.begin());
    }
  }
  EXPECT_EQ(fast.num_admitted(), rebuild.num_admitted());
  EXPECT_EQ(fast.num_rejected(), rebuild.num_rejected());
}

TEST(OnlineFastPath, CpTraceEquivalenceWithDepartures) {
  util::Rng rng(91);
  const topo::Topology topo = topo::make_waxman(60, rng);
  OnlineCpOptions fast_opts;
  ASSERT_TRUE(fast_opts.incremental_view);  // fast path is the default
  OnlineCpOptions rebuild_opts;
  rebuild_opts.incremental_view = false;
  OnlineCp fast(topo, fast_opts);
  OnlineCp rebuild(topo, rebuild_opts);
  run_trace_equivalence(fast, rebuild, 80);
}

TEST(OnlineFastPath, CpTraceEquivalenceLinearWeights) {
  util::Rng rng(92);
  const topo::Topology topo = topo::make_waxman(40, rng);
  OnlineCpOptions fast_opts;
  fast_opts.linear_weights = true;
  OnlineCpOptions rebuild_opts;
  rebuild_opts.linear_weights = true;
  rebuild_opts.incremental_view = false;
  OnlineCp fast(topo, fast_opts);
  OnlineCp rebuild(topo, rebuild_opts);
  run_trace_equivalence(fast, rebuild, 60);
}

TEST(OnlineFastPath, SpTraceEquivalenceWithDepartures) {
  util::Rng rng(93);
  const topo::Topology topo = topo::make_waxman(60, rng);
  OnlineSpOptions rebuild_opts;
  rebuild_opts.incremental_view = false;
  OnlineSp fast(topo);  // default options: fast path on
  OnlineSp rebuild(topo, rebuild_opts);
  run_trace_equivalence(fast, rebuild, 80);
}

TEST(OnlineFastPath, NonKmbEngineFallsBackToRebuildPath) {
  // A non-KMB Steiner engine must keep working (and agree with an explicit
  // rebuild configuration) even though it cannot use the shared closure.
  util::Rng rng(94);
  const topo::Topology topo = topo::make_waxman(30, rng);
  OnlineCpOptions a_opts;
  a_opts.steiner_engine = graph::SteinerEngine::kTakahashiMatsuyama;
  OnlineCpOptions b_opts = a_opts;
  b_opts.incremental_view = false;
  OnlineCp a(topo, a_opts);
  OnlineCp b(topo, b_opts);
  run_trace_equivalence(a, b, 40);
}

// ---------------------------------------------------------------------------
// OnlineWeightedView: patching, keyed invalidation, eras
// ---------------------------------------------------------------------------

/// Triangle 0-1-2 (0-2 direct more expensive than 0-1 + 1-2) plus a tail
/// 2-3: the tree from 1 never contains edge 0-2, the tree from 0 does.
topo::Topology triangle_tail_topology() {
  topo::Topology t;
  t.name = "triangle_tail";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);  // e0
  t.graph.add_edge(1, 2, 1.0);  // e1
  t.graph.add_edge(0, 2, 1.5);  // e2
  t.graph.add_edge(2, 3, 1.0);  // e3
  t.servers = {2};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 0, 8000, 0};
  return t;
}

TEST(OnlineWeightedView, PatchEvictsOnlyTreesContainingChangedEdges) {
  const topo::Topology topo = triangle_tail_topology();
  nfv::ResourceState state(topo);
  // Weight = f(residual): halves of consumed bandwidth on top of the static
  // link weight, so allocations move exactly the touched edges.
  OnlineWeightedView view(topo, [&](graph::EdgeId e) {
    const double consumed =
        state.bandwidth_capacity(e) - state.residual_bandwidth(e);
    return topo.graph.weight(e) + consumed / 1000.0;
  });
  view.set_policy(ViewPolicy::kForceIncremental);  // pin the cache machinery

  const std::vector<graph::VertexId> sources = {0, 1};
  const auto first = view.trees_for(state, sources, 50.0);
  // Tree from 0 uses e2 (1.5 < 1+1); tree from 1 reaches everything through
  // e0/e1/e3.
  ASSERT_EQ(first[0]->parent_edge[2], 2u);
  ASSERT_EQ(first[1]->parent_edge[2], 1u);

  nfv::Footprint fp;
  fp.bandwidth = {{2, 100.0}};  // consume on e2 only
  state.allocate(fp);
  view.apply_allocate(fp);

  const auto second = view.trees_for(state, sources, 50.0);
  EXPECT_NE(second[0].get(), first[0].get());  // contained e2: evicted
  EXPECT_EQ(second[1].get(), first[1].get());  // untouched: cache hit
  // The recomputed tree sees the patched weight: e2 now costs 1.6, so the
  // path 0-1-2 (2.0) still loses; bump it past 2.0 and the tree reroutes.
  nfv::Footprint fp2;
  fp2.bandwidth = {{2, 500.0}};
  state.allocate(fp2);
  view.apply_allocate(fp2);
  const auto third = view.trees_for(state, sources, 50.0);
  EXPECT_EQ(third[0]->parent_edge[2], 1u);  // rerouted around the hot link
}

TEST(OnlineWeightedView, AllocationWithoutWeightChangeKeepsCache) {
  const topo::Topology topo = triangle_tail_topology();
  nfv::ResourceState state(topo);
  // Residual-independent weights (the OnlineSp configuration): allocations
  // never dirty the cache.
  OnlineWeightedView view(topo,
                          [&](graph::EdgeId e) { return topo.graph.weight(e); });
  // Pin the incremental cache: these tests assert cache mechanics, and the
  // adaptive policy would (correctly) pick rebuild mode on a 4-edge graph.
  view.set_policy(ViewPolicy::kForceIncremental);
  const std::vector<graph::VertexId> sources = {0};
  const auto first = view.trees_for(state, sources, 50.0);
  nfv::Footprint fp;
  fp.bandwidth = {{0, 100.0}, {1, 100.0}, {2, 100.0}, {3, 100.0}};
  state.allocate(fp);
  view.apply_allocate(fp);
  const auto second = view.trees_for(state, sources, 50.0);
  EXPECT_EQ(second[0].get(), first[0].get());
}

TEST(OnlineWeightedView, ReleaseStartsNewEraDroppingAllTrees) {
  const topo::Topology topo = triangle_tail_topology();
  nfv::ResourceState state(topo);
  OnlineWeightedView view(topo,
                          [&](graph::EdgeId e) { return topo.graph.weight(e); });
  // Pin the incremental cache: these tests assert cache mechanics, and the
  // adaptive policy would (correctly) pick rebuild mode on a 4-edge graph.
  view.set_policy(ViewPolicy::kForceIncremental);
  const std::vector<graph::VertexId> sources = {0, 1};
  const auto first = view.trees_for(state, sources, 50.0);
  nfv::Footprint fp;
  fp.bandwidth = {{3, 100.0}};
  state.allocate(fp);
  view.apply_allocate(fp);
  state.release(fp);
  view.apply_release(fp);
  const auto second = view.trees_for(state, sources, 50.0);
  // Even weight-identical trees must be recomputed: a release can only be
  // trusted through a full era reset.
  EXPECT_NE(second[0].get(), first[0].get());
  EXPECT_NE(second[1].get(), first[1].get());
}

TEST(OnlineWeightedView, LowerBandwidthThresholdForcesRecompute) {
  const topo::Topology topo = triangle_tail_topology();
  nfv::ResourceState state(topo);
  OnlineWeightedView view(topo,
                          [&](graph::EdgeId e) { return topo.graph.weight(e); });
  // Pin the incremental cache: these tests assert cache mechanics, and the
  // adaptive policy would (correctly) pick rebuild mode on a 4-edge graph.
  view.set_policy(ViewPolicy::kForceIncremental);
  const std::vector<graph::VertexId> sources = {0};
  const auto at_100 = view.trees_for(state, sources, 100.0);
  // b' < b_T: eligibility at b' is a superset, the cached tree may be wrong.
  const auto at_50 = view.trees_for(state, sources, 50.0);
  EXPECT_NE(at_50[0].get(), at_100[0].get());
  // b' >= b_T with all tree edges still eligible: reuse.
  const auto at_80 = view.trees_for(state, sources, 80.0);
  EXPECT_EQ(at_80[0].get(), at_50[0].get());
}

TEST(OnlineWeightedView, IneligibleTreeEdgeForcesRecompute) {
  const topo::Topology topo = triangle_tail_topology();
  nfv::ResourceState state(topo);
  OnlineWeightedView view(topo,
                          [&](graph::EdgeId e) { return topo.graph.weight(e); });
  // Pin the incremental cache: these tests assert cache mechanics, and the
  // adaptive policy would (correctly) pick rebuild mode on a 4-edge graph.
  view.set_policy(ViewPolicy::kForceIncremental);
  const std::vector<graph::VertexId> sources = {0};
  const auto before = view.trees_for(state, sources, 50.0);
  ASSERT_EQ(before[0]->parent_edge[2], 2u);  // uses e2
  // Starve e2 below the request bandwidth WITHOUT changing weights (weights
  // are residual-independent here), so only per-lookup eligibility can
  // notice.
  nfv::Footprint fp;
  fp.bandwidth = {{2, 960.0}};
  state.allocate(fp);
  view.apply_allocate(fp);
  const auto after = view.trees_for(state, sources, 50.0);
  EXPECT_NE(after[0].get(), before[0].get());
  EXPECT_EQ(after[0]->parent_edge[2], 1u);  // rerouted: e2 now ineligible
  // A fresh filtered Dijkstra agrees bit-for-bit.
  const graph::ShortestPaths fresh =
      graph::dijkstra_filtered(view.graph(), 0, [&](graph::EdgeId e) {
        return nfv::edge_eligible(state, topo.graph, e, 50.0);
      });
  EXPECT_EQ(after[0]->dist, fresh.dist);
  EXPECT_EQ(after[0]->parent_edge, fresh.parent_edge);
}

// ---------------------------------------------------------------------------
// RejectTracker precedence
// ---------------------------------------------------------------------------

TEST(RejectTracker, DefaultsToConstructorValue) {
  const RejectTracker t("nothing yet", RejectCause::kCompute);
  EXPECT_EQ(t.reason(), "nothing yet");
  EXPECT_EQ(t.cause(), RejectCause::kCompute);
  EXPECT_EQ(t.rank(), RejectTracker::kRankDefault);
}

TEST(RejectTracker, ThresholdOverridesDefaultOnly) {
  RejectTracker t("default", RejectCause::kCompute);
  t.update(RejectTracker::kRankThreshold, "threshold", RejectCause::kThreshold);
  EXPECT_EQ(t.reason(), "threshold");
  t.update(RejectTracker::kRankCandidate, "candidate", RejectCause::kDelay);
  EXPECT_EQ(t.reason(), "candidate");
  // A later threshold gate can no longer override an evaluated candidate's
  // failure (the old string-compare special case, now explicit).
  t.update(RejectTracker::kRankThreshold, "threshold again",
           RejectCause::kThreshold);
  EXPECT_EQ(t.reason(), "candidate");
  EXPECT_EQ(t.cause(), RejectCause::kDelay);
}

TEST(RejectTracker, EqualRankIsLastWriterWins) {
  RejectTracker t("default", RejectCause::kCompute);
  t.update(RejectTracker::kRankCandidate, "first", RejectCause::kBandwidth);
  t.update(RejectTracker::kRankCandidate, "second", RejectCause::kDelay);
  EXPECT_EQ(t.reason(), "second");
  EXPECT_EQ(t.cause(), RejectCause::kDelay);
}

}  // namespace
}  // namespace nfvm::core
