#include "core/online_sp.h"

#include <gtest/gtest.h>

#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology path_topology() {
  topo::Topology t;
  t.name = "path5";
  t.graph = graph::Graph(5);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.graph.add_edge(3, 4, 1.0);
  t.servers = {2, 4};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 0, 8000, 0, 8000};
  return t;
}

nfv::Request simple_request(std::uint64_t id = 1) {
  nfv::Request r;
  r.id = id;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  return r;
}

TEST(OnlineSp, Name) {
  const topo::Topology t = path_topology();
  OnlineSp algo(t);
  EXPECT_EQ(algo.name(), "SP");
}

TEST(OnlineSp, AdmitsSimpleRequest) {
  const topo::Topology t = path_topology();
  OnlineSp algo(t);
  const nfv::Request r = simple_request();
  const AdmissionDecision d = algo.process(r);
  ASSERT_TRUE(d.admitted) << d.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(t.graph, r, d.tree, &error)) << error;
}

TEST(OnlineSp, CostCountsLinkTraversals) {
  const topo::Topology t = path_topology();
  OnlineSp algo(t);
  const AdmissionDecision d = algo.process(simple_request());
  ASSERT_TRUE(d.admitted);
  // Server 2: 0->2 is 2 hops, tree 2->3 is 1 hop = 3 (server 4 would be 5).
  EXPECT_DOUBLE_EQ(d.tree.cost, 3.0);
  EXPECT_EQ(d.tree.servers, (std::vector<graph::VertexId>{2}));
}

TEST(OnlineSp, GreedyAdmitsUntilPhysicalExhaustion) {
  const topo::Topology t = path_topology();
  OnlineSp algo(t);
  nfv::Request r = simple_request();
  std::size_t admitted = 0;
  for (std::uint64_t k = 0; k < 20; ++k) {
    r.id = k;
    if (algo.process(r).admitted) ++admitted;
  }
  // Source's single outgoing link fits exactly 10 x 100 Mbps; SP has no
  // admission thresholds so it packs the link completely.
  EXPECT_EQ(admitted, 10u);
}

TEST(OnlineSp, RejectsWhenComputeGone) {
  const topo::Topology t = path_topology();
  OnlineSp algo(t);
  nfv::Request r = simple_request();
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kIds});  // 320 MHz/100M
  r.bandwidth_mbps = 100.0;
  std::size_t admitted = 0;
  for (std::uint64_t k = 0; k < 80; ++k) {
    r.id = k;
    if (algo.process(r).admitted) ++admitted;
  }
  // Bandwidth on link e0 caps at 10 admissions before compute runs out.
  EXPECT_LE(admitted, 10u);
  const AdmissionDecision d = algo.process(r);
  EXPECT_FALSE(d.admitted);
  EXPECT_FALSE(d.reject_reason.empty());
}

TEST(OnlineSp, BackhaulMultiplicityCharged) {
  topo::Topology t;
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {3};
  t.link_bandwidth = {1000, 1000, 1000};
  t.server_compute = {0, 0, 0, 8000};

  OnlineSp algo(t);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {1};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  const AdmissionDecision d = algo.process(r);
  ASSERT_TRUE(d.admitted) << d.reject_reason;
  // SP routes 0->3 (3 hops) then the processed copy back 3->1 (2 hops).
  EXPECT_NEAR(algo.resources().residual_bandwidth(1), 800.0, 1e-6);
  EXPECT_NEAR(algo.resources().residual_bandwidth(2), 800.0, 1e-6);
  EXPECT_NEAR(algo.resources().residual_bandwidth(0), 900.0, 1e-6);
}

TEST(OnlineSp, IgnoresLoadUnlikeCp) {
  // SP keeps choosing the hop-shortest candidate regardless of load.
  topo::Topology t;
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);  // top: server 1
  t.graph.add_edge(1, 3, 1.0);
  t.graph.add_edge(0, 2, 1.0);  // bottom: server 2
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {1, 2};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 8000, 8000, 0};

  OnlineSp algo(t);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const AdmissionDecision first = algo.process(r);
  ASSERT_TRUE(first.admitted);
  r.id = 2;
  const AdmissionDecision second = algo.process(r);
  ASSERT_TRUE(second.admitted);
  // Both candidates cost 2 hops every time; SP's deterministic tie-break
  // picks the same server again (no load awareness).
  EXPECT_EQ(second.tree.servers, first.tree.servers);
}

TEST(OnlineSp, UnreachableDestinationRejected) {
  topo::Topology t = path_topology();
  OnlineSp algo(t);
  nfv::Request r = simple_request();
  r.bandwidth_mbps = 5000.0;  // wider than every link
  const AdmissionDecision d = algo.process(r);
  EXPECT_FALSE(d.admitted);
}

TEST(OnlineSp, SequenceOnRandomTopologyValid) {
  util::Rng rng(505);
  const topo::Topology t = topo::make_waxman(50, rng);
  OnlineSp algo(t);
  sim::RequestGenerator gen(t, rng);
  const auto requests = gen.sequence(60);
  const sim::SimulationMetrics m = sim::run_online(algo, requests);
  EXPECT_EQ(m.num_requests, 60u);
  EXPECT_GT(m.num_admitted, 0u);
}

TEST(OnlineSp, StateAccumulatesAcrossRequests) {
  const topo::Topology t = path_topology();
  OnlineSp algo(t);
  nfv::Request r = simple_request();
  algo.process(r);
  const double after_one = algo.resources().total_allocated_bandwidth();
  r.id = 2;
  algo.process(r);
  EXPECT_GT(algo.resources().total_allocated_bandwidth(), after_one);
}

}  // namespace
}  // namespace nfvm::core
