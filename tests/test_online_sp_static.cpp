#include "core/online_sp_static.h"

#include <gtest/gtest.h>

#include "core/online_sp.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology diamond_topology() {
  // Two disjoint routes 0 -> 3: 0-1-3 (server 1) and 0-2-3 (server 2).
  topo::Topology t;
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);  // e0
  t.graph.add_edge(1, 3, 1.0);  // e1
  t.graph.add_edge(0, 2, 1.0);  // e2
  t.graph.add_edge(2, 3, 1.0);  // e3
  t.servers = {1, 2};
  t.link_bandwidth = {1000, 1000, 1000, 1000};
  t.server_compute = {0, 8000, 8000, 0};
  return t;
}

nfv::Request simple_request(std::uint64_t id = 1) {
  nfv::Request r;
  r.id = id;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  return r;
}

TEST(OnlineSpStatic, Name) {
  const topo::Topology t = diamond_topology();
  OnlineSpStatic algo(t);
  EXPECT_EQ(algo.name(), "SP_static");
}

TEST(OnlineSpStatic, AdmitsAndValidates) {
  const topo::Topology t = diamond_topology();
  OnlineSpStatic algo(t);
  const nfv::Request r = simple_request();
  const AdmissionDecision d = algo.process(r);
  ASSERT_TRUE(d.admitted) << d.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(t.graph, r, d.tree, &error)) << error;
}

TEST(OnlineSpStatic, FallsOverToOtherFixedRouteWhenFeasible) {
  // Both candidate servers have fixed 2-hop routes; when one route's links
  // fill, the other candidate still fits, so admissions continue until both
  // fixed routes are full - but no new routes are ever discovered.
  const topo::Topology t = diamond_topology();
  OnlineSpStatic algo(t);
  nfv::Request r = simple_request();
  std::size_t admitted = 0;
  for (std::uint64_t k = 0; k < 30; ++k) {
    r.id = k;
    if (algo.process(r).admitted) ++admitted;
  }
  // 2 disjoint 2-hop routes x 10 requests of 100 Mbps each.
  EXPECT_EQ(admitted, 20u);
}

TEST(OnlineSpStatic, DoesNotRerouteAroundSaturation) {
  // Path 0-1-2 with a longer detour 0-3-4-2; server at 2's neighbor...
  // Construct: source 0, dest 2. Short route through e0,e1; detour exists.
  // Static SP always uses the unit-weight shortest path; once it fills, the
  // request is rejected even though the detour has capacity.
  topo::Topology t;
  t.graph = graph::Graph(5);
  t.graph.add_edge(0, 1, 1.0);  // e0 (short, to the server)
  t.graph.add_edge(1, 2, 1.0);  // e1 (short, to the destination)
  t.graph.add_edge(0, 3, 1.0);  // e2 (detour)
  t.graph.add_edge(3, 4, 1.0);  // e3 (detour)
  t.graph.add_edge(4, 1, 1.0);  // e4 (detour into the server)
  t.graph.add_edge(4, 2, 1.0);  // e5 (detour to the destination)
  t.servers = {1};
  t.link_bandwidth = {500, 500, 5000, 5000, 5000, 5000};
  t.server_compute = {0, 80000, 0, 0, 0};

  OnlineSpStatic stat(t);
  OnlineSp adaptive(t);
  nfv::Request r;
  r.source = 0;
  r.destinations = {2};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  std::size_t stat_admitted = 0;
  std::size_t adaptive_admitted = 0;
  for (std::uint64_t k = 0; k < 30; ++k) {
    r.id = k;
    if (stat.process(r).admitted) ++stat_admitted;
    if (adaptive.process(r).admitted) ++adaptive_admitted;
  }
  // Static: 5 requests fill the 500-Mbps short links, then rejection.
  EXPECT_EQ(stat_admitted, 5u);
  // Adaptive SP reroutes via the detour (server still at 1: route
  // 0-1 processed... the detour bypasses 1; adaptive still needs to reach
  // server 1, so it keeps admitting as long as some 1-containing route has
  // capacity).
  EXPECT_GT(adaptive_admitted, stat_admitted);
}

TEST(OnlineSpStatic, RejectReasonProvided) {
  const topo::Topology t = diamond_topology();
  OnlineSpStatic algo(t);
  nfv::Request r = simple_request();
  r.bandwidth_mbps = 5000.0;
  const AdmissionDecision d = algo.process(r);
  EXPECT_FALSE(d.admitted);
  EXPECT_FALSE(d.reject_reason.empty());
}

TEST(OnlineSpStatic, NeverBeatsAdaptiveSp) {
  // The adaptive variant dominates the static one on any workload (it can
  // always use the static route when optimal). Checked empirically on a
  // random topology with a shared arrival sequence.
  util::Rng rng(606);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  const topo::Topology t = topo::make_waxman(60, rng, wo);
  util::Rng workload(7);
  sim::RequestGenerator gen(t, workload);
  const auto requests = gen.sequence(200);
  OnlineSp adaptive(t);
  OnlineSpStatic stat(t);
  const sim::SimulationMetrics ma = sim::run_online(adaptive, requests);
  const sim::SimulationMetrics ms = sim::run_online(stat, requests);
  EXPECT_GE(ma.num_admitted, ms.num_admitted);
}

TEST(OnlineSpStatic, ChargesBackhaulMultiplicities) {
  topo::Topology t;
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {3};
  t.link_bandwidth = {1000, 1000, 1000};
  t.server_compute = {0, 0, 0, 8000};

  OnlineSpStatic algo(t);
  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {1};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  const AdmissionDecision d = algo.process(r);
  ASSERT_TRUE(d.admitted);
  EXPECT_NEAR(algo.resources().residual_bandwidth(1), 800.0, 1e-6);
  EXPECT_NEAR(algo.resources().residual_bandwidth(0), 900.0, 1e-6);
}

}  // namespace
}  // namespace nfvm::core
