// Bit-identical results regardless of worker-thread count: APSP, KMB,
// Appro_Multi's combination sweep, and the offline simulator batch all
// fan out over util::ThreadPool::global(), and all must produce exactly
// the same output at 1 and 4 threads.
#include <gtest/gtest.h>

#include <vector>

#include "core/appro_multi.h"
#include "graph/apsp.h"
#include "graph/steiner.h"
#include "sim/offline_batch.h"
#include "sim/request_gen.h"
#include "topology/waxman.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfvm {
namespace {

/// Restores the global pool to single-threaded when a test exits.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { util::ThreadPool::set_global_threads(1); }
};

topo::Topology make_topology(std::size_t n, unsigned seed) {
  util::Rng rng(seed);
  return topo::make_waxman(n, rng);
}

TEST(ParallelDeterminism, ApspMatrixIsThreadCountInvariant) {
  GlobalThreadsGuard guard;
  const topo::Topology topo = make_topology(50, 31);

  util::ThreadPool::set_global_threads(1);
  const graph::AllPairsShortestPaths serial(topo.graph, /*keep_parents=*/true);
  util::ThreadPool::set_global_threads(4);
  const graph::AllPairsShortestPaths parallel(topo.graph, /*keep_parents=*/true);

  ASSERT_EQ(serial.num_vertices(), parallel.num_vertices());
  for (graph::VertexId u = 0; u < serial.num_vertices(); ++u) {
    for (graph::VertexId v = 0; v < serial.num_vertices(); ++v) {
      ASSERT_EQ(serial.distance(u, v), parallel.distance(u, v));
    }
    const graph::ShortestPaths& st = serial.source_tree(u);
    const graph::ShortestPaths& pt = parallel.source_tree(u);
    ASSERT_EQ(st.parent, pt.parent);
    ASSERT_EQ(st.parent_edge, pt.parent_edge);
  }
}

TEST(ParallelDeterminism, KmbSteinerIsThreadCountInvariant) {
  GlobalThreadsGuard guard;
  const topo::Topology topo = make_topology(60, 32);
  const std::vector<graph::VertexId> terminals{0, 7, 19, 33, 48, 55};

  util::ThreadPool::set_global_threads(1);
  const graph::SteinerResult serial = graph::kmb_steiner(topo.graph, terminals);
  util::ThreadPool::set_global_threads(4);
  const graph::SteinerResult parallel = graph::kmb_steiner(topo.graph, terminals);

  EXPECT_EQ(serial.connected, parallel.connected);
  EXPECT_EQ(serial.edges, parallel.edges);
  EXPECT_EQ(serial.weight, parallel.weight);
}

TEST(ParallelDeterminism, ApproMultiIsThreadCountInvariant) {
  GlobalThreadsGuard guard;
  const topo::Topology topo = make_topology(40, 33);
  const core::LinearCosts costs = core::uniform_costs(topo, 1.0, 0.001);
  util::Rng rng(34);
  sim::RequestGenerator gen(topo, rng);
  const std::vector<nfv::Request> requests = gen.sequence(5);

  core::ApproMultiOptions opts;
  opts.max_servers = 2;
  for (const nfv::Request& request : requests) {
    util::ThreadPool::set_global_threads(1);
    const core::OfflineSolution serial =
        core::appro_multi(topo, costs, request, opts);
    util::ThreadPool::set_global_threads(4);
    const core::OfflineSolution parallel =
        core::appro_multi(topo, costs, request, opts);

    EXPECT_EQ(serial.admitted, parallel.admitted);
    EXPECT_EQ(serial.combinations_explored, parallel.combinations_explored);
    EXPECT_EQ(serial.tree.cost, parallel.tree.cost);  // bit-equal, not near
    EXPECT_EQ(serial.tree.servers, parallel.tree.servers);
    EXPECT_EQ(serial.tree.edge_uses, parallel.tree.edge_uses);
  }
}

TEST(ParallelDeterminism, OfflineBatchIsThreadCountInvariant) {
  GlobalThreadsGuard guard;
  const topo::Topology topo = make_topology(30, 35);
  const core::LinearCosts costs = core::uniform_costs(topo, 1.0, 0.001);
  util::Rng rng(36);
  sim::RequestGenerator gen(topo, rng);
  const std::vector<nfv::Request> requests = gen.sequence(6);

  util::ThreadPool::set_global_threads(1);
  const auto serial = sim::run_offline_batch(topo, costs, requests);
  util::ThreadPool::set_global_threads(4);
  const auto parallel = sim::run_offline_batch(topo, costs, requests);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].appro_multi.size(), parallel[i].appro_multi.size());
    for (std::size_t k = 0; k < serial[i].appro_multi.size(); ++k) {
      EXPECT_EQ(serial[i].appro_multi[k].admitted,
                parallel[i].appro_multi[k].admitted);
      EXPECT_EQ(serial[i].appro_multi[k].tree.cost,
                parallel[i].appro_multi[k].tree.cost);
      EXPECT_EQ(serial[i].appro_multi[k].tree.edge_uses,
                parallel[i].appro_multi[k].tree.edge_uses);
    }
    EXPECT_EQ(serial[i].one_server.tree.cost, parallel[i].one_server.tree.cost);
    EXPECT_EQ(serial[i].chain_split.tree.cost, parallel[i].chain_split.tree.cost);
  }
}

}  // namespace
}  // namespace nfvm
