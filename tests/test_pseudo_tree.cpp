#include "core/pseudo_tree.h"

#include <gtest/gtest.h>

namespace nfvm::core {
namespace {

/// Path graph 0-1-2-3 with the server at 1.
struct Fixture {
  graph::Graph g{4};
  nfv::Request request;
  PseudoMulticastTree tree;

  Fixture() {
    g.add_edge(0, 1, 1.0);  // e0
    g.add_edge(1, 2, 1.0);  // e1
    g.add_edge(2, 3, 1.0);  // e2

    request.id = 1;
    request.source = 0;
    request.destinations = {3};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});

    tree.source = 0;
    tree.servers = {1};
    tree.edge_uses = {{0, 1}, {1, 1}, {2, 1}};
    DestinationRoute route;
    route.destination = 3;
    route.server = 1;
    route.walk = {0, 1, 2, 3};
    route.server_index = 1;
    tree.routes = {route};
    tree.cost = 3.0;
  }
};

TEST(PseudoTree, ValidTreePasses) {
  Fixture f;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.g, f.request, f.tree, &error)) << error;
}

TEST(PseudoTree, TotalTraversals) {
  Fixture f;
  EXPECT_EQ(f.tree.total_link_traversals(), 3u);
  f.tree.edge_uses[1].second = 2;
  EXPECT_EQ(f.tree.total_link_traversals(), 4u);
}

TEST(PseudoTree, FootprintChargesBandwidthTimesMultiplicity) {
  Fixture f;
  f.tree.edge_uses = {{0, 1}, {1, 2}, {2, 1}};
  const nfv::Footprint fp = f.tree.footprint(f.request);
  ASSERT_EQ(fp.bandwidth.size(), 3u);
  EXPECT_DOUBLE_EQ(fp.bandwidth[1].second, 200.0);  // 2 x 100 Mbps
  ASSERT_EQ(fp.compute.size(), 1u);
  EXPECT_EQ(fp.compute[0].first, 1u);
  EXPECT_DOUBLE_EQ(fp.compute[0].second, f.request.compute_demand_mhz());
}

TEST(PseudoTree, FootprintChargesEveryServer) {
  Fixture f;
  f.tree.servers = {1, 2};
  const nfv::Footprint fp = f.tree.footprint(f.request);
  EXPECT_EQ(fp.compute.size(), 2u);
}

TEST(PseudoTree, SourceMismatchRejected) {
  Fixture f;
  f.tree.source = 1;
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, NegativeCostRejected) {
  Fixture f;
  f.tree.cost = -1.0;
  std::string error;
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, &error));
  EXPECT_EQ(error, "negative cost");
}

TEST(PseudoTree, NoServersRejected) {
  Fixture f;
  f.tree.servers.clear();
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, DuplicateServersRejected) {
  Fixture f;
  f.tree.servers = {1, 1};
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, UnknownEdgeRejected) {
  Fixture f;
  f.tree.edge_uses.push_back({9, 1});
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, ZeroMultiplicityRejected) {
  Fixture f;
  f.tree.edge_uses[0].second = 0;
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, DuplicateEdgeEntryRejected) {
  Fixture f;
  f.tree.edge_uses.push_back({0, 1});
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, MissingRouteRejected) {
  Fixture f;
  f.tree.routes.clear();
  std::string error;
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, &error));
  EXPECT_EQ(error, "some destination has no route");
}

TEST(PseudoTree, RouteForNonDestinationRejected) {
  Fixture f;
  f.tree.routes[0].destination = 2;
  f.tree.routes[0].walk = {0, 1, 2};
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, WalkMustStartAtSource) {
  Fixture f;
  f.tree.routes[0].walk = {1, 2, 3};
  f.tree.routes[0].server_index = 0;
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, WalkMustEndAtDestination) {
  Fixture f;
  f.tree.routes[0].walk = {0, 1, 2};
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, ServerIndexMustPointAtServer) {
  Fixture f;
  f.tree.routes[0].server_index = 2;  // walk[2] == 2, not the server
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, ServerIndexOutOfRangeRejected) {
  Fixture f;
  f.tree.routes[0].server_index = 9;
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, RouteServerMustBeListed) {
  Fixture f;
  f.tree.servers = {2};
  // Route still claims server 1.
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, WalkThroughNonAdjacentVerticesRejected) {
  Fixture f;
  f.tree.routes[0].walk = {0, 2, 3};  // 0-2 is not a link
  f.tree.routes[0].server_index = 0;
  f.tree.routes[0].server = 0;
  f.tree.servers = {0};
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, WalkOverEdgeMissingFromUsesRejected) {
  Fixture f;
  f.tree.edge_uses = {{0, 1}, {1, 1}};  // e2 missing but walked
  EXPECT_FALSE(validate_pseudo_tree(f.g, f.request, f.tree, nullptr));
}

TEST(PseudoTree, BackhaulWalkWithRevisitsAccepted) {
  // Destination 0 side: walk 0 -> 1 (server) -> 0 is impossible (source is
  // 0); instead test a detour walk 0,1,2,1,... on a request to 3 plus 0-side
  // branch. Build: source 0, dests {2}, server at 3, walk 0,1,2,3,2.
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);

  nfv::Request request;
  request.id = 2;
  request.source = 0;
  request.destinations = {2};
  request.bandwidth_mbps = 50.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  PseudoMulticastTree tree;
  tree.source = 0;
  tree.servers = {3};
  tree.edge_uses = {{0, 1}, {1, 1}, {2, 2}};  // 2-3 walked twice
  DestinationRoute route;
  route.destination = 2;
  route.server = 3;
  route.walk = {0, 1, 2, 3, 2};
  route.server_index = 3;
  tree.routes = {route};
  tree.cost = 4.0;

  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(g, request, tree, &error)) << error;
}

TEST(MakeOneServerSptTree, BuildsValidTreeWithMapping) {
  // Filtered working graph scenario: identity mapping here for simplicity.
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);

  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const graph::ShortestPaths from_source = graph::dijkstra(g, 0);
  const graph::ShortestPaths from_server = graph::dijkstra(g, 2);
  PseudoMulticastTree tree =
      make_one_server_spt_tree(r, 2, from_source, from_server, nullptr, 3.0);
  EXPECT_DOUBLE_EQ(tree.cost, 3.0);
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(g, r, tree, &error)) << error;
}

TEST(MakeOneServerSptTree, ThrowsOnUnreachableServer) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);  // vertex 2 isolated

  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {1};
  r.bandwidth_mbps = 50.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const graph::ShortestPaths from_source = graph::dijkstra(g, 0);
  const graph::ShortestPaths from_server = graph::dijkstra(g, 2);
  EXPECT_THROW(
      make_one_server_spt_tree(r, 2, from_source, from_server, nullptr, 0.0),
      std::invalid_argument);
}

TEST(MakeOneServerSptTree, ThrowsOnUnreachableDestination) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);  // vertex 2 isolated

  nfv::Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {2};
  r.bandwidth_mbps = 50.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const graph::ShortestPaths from_source = graph::dijkstra(g, 0);
  const graph::ShortestPaths from_server = graph::dijkstra(g, 1);
  EXPECT_THROW(
      make_one_server_spt_tree(r, 1, from_source, from_server, nullptr, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::core
