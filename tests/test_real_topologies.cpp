#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/components.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"
#include "util/rng.h"

namespace nfvm::topo {
namespace {

TEST(Geant, SizeMatchesEmbeddedMap) {
  util::Rng rng(1);
  const Topology t = make_geant(rng);
  EXPECT_EQ(t.num_switches(), 40u);
  EXPECT_EQ(t.num_links(), 61u);
  EXPECT_EQ(t.servers.size(), 9u);  // nine servers as in the paper's setting
}

TEST(Geant, ConnectedAndValid) {
  util::Rng rng(2);
  const Topology t = make_geant(rng);
  EXPECT_TRUE(graph::is_connected(t.graph));
  EXPECT_NO_THROW(validate_topology(t));
}

TEST(Geant, CityNamesAlignWithVertices) {
  util::Rng rng(3);
  const Topology t = make_geant(rng);
  const auto& names = geant_city_names();
  EXPECT_EQ(names.size(), t.num_switches());
  std::set<std::string> distinct(names.begin(), names.end());
  EXPECT_EQ(distinct.size(), names.size());
}

TEST(Geant, WiringIsDeterministic) {
  util::Rng a(10);
  util::Rng b(20);  // different capacity draws, same wiring
  const Topology ta = make_geant(a);
  const Topology tb = make_geant(b);
  ASSERT_EQ(ta.num_links(), tb.num_links());
  for (graph::EdgeId e = 0; e < ta.num_links(); ++e) {
    EXPECT_EQ(ta.graph.edge(e).u, tb.graph.edge(e).u);
    EXPECT_EQ(ta.graph.edge(e).v, tb.graph.edge(e).v);
  }
  EXPECT_EQ(ta.servers, tb.servers);
}

TEST(Geant, ServersAreMajorPops) {
  util::Rng rng(4);
  const Topology t = make_geant(rng);
  const auto& names = geant_city_names();
  std::set<std::string> server_names;
  for (graph::VertexId v : t.servers) server_names.insert(names[v]);
  EXPECT_TRUE(server_names.count("Frankfurt"));
  EXPECT_TRUE(server_names.count("London"));
  EXPECT_TRUE(server_names.count("Amsterdam"));
}

TEST(As1755, MatchesRocketfuelScale) {
  util::Rng rng(1);
  const Topology t = make_as1755(rng);
  EXPECT_EQ(t.num_switches(), 87u);
  EXPECT_EQ(t.num_links(), 161u);
  EXPECT_EQ(t.servers.size(), 9u);
  EXPECT_TRUE(graph::is_connected(t.graph));
  EXPECT_NO_THROW(validate_topology(t));
}

TEST(As4755, MatchesRocketfuelScale) {
  util::Rng rng(1);
  const Topology t = make_as4755(rng);
  EXPECT_EQ(t.num_switches(), 121u);
  EXPECT_EQ(t.num_links(), 228u);
  EXPECT_EQ(t.servers.size(), 12u);
  EXPECT_TRUE(graph::is_connected(t.graph));
}

TEST(IspLike, WiringIsAPureFunctionOfStructureSeed) {
  util::Rng a(111);
  util::Rng b(999);
  const Topology ta = make_as1755(a);
  const Topology tb = make_as1755(b);
  ASSERT_EQ(ta.num_links(), tb.num_links());
  for (graph::EdgeId e = 0; e < ta.num_links(); ++e) {
    EXPECT_EQ(ta.graph.edge(e).u, tb.graph.edge(e).u);
    EXPECT_EQ(ta.graph.edge(e).v, tb.graph.edge(e).v);
  }
}

TEST(IspLike, HeavyTailedDegrees) {
  // Preferential attachment should produce hubs: the max degree must be
  // several times the mean degree.
  util::Rng rng(5);
  const Topology t = make_as1755(rng);
  std::size_t max_deg = 0;
  for (graph::VertexId v = 0; v < t.num_switches(); ++v) {
    max_deg = std::max(max_deg, t.graph.degree(v));
  }
  const double mean_deg =
      2.0 * static_cast<double>(t.num_links()) / static_cast<double>(t.num_switches());
  EXPECT_GE(static_cast<double>(max_deg), 3.0 * mean_deg);
}

TEST(IspLike, NoParallelLinks) {
  util::Rng rng(6);
  const Topology t = make_as4755(rng);
  std::set<std::pair<graph::VertexId, graph::VertexId>> seen;
  for (const graph::Edge& e : t.graph.edges()) {
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second)
        << "duplicate link " << e.u << "-" << e.v;
  }
}

TEST(IspLike, RejectsInconsistentOptions) {
  util::Rng rng(7);
  IspOptions opts;
  opts.num_nodes = 10;
  opts.num_links = 5;  // < n - 1
  opts.num_servers = 2;
  EXPECT_THROW(make_isp_like("bad", opts, rng), std::invalid_argument);
  opts.num_links = 100;  // > n(n-1)/2
  EXPECT_THROW(make_isp_like("bad", opts, rng), std::invalid_argument);
  opts.num_links = 20;
  opts.num_servers = 0;
  EXPECT_THROW(make_isp_like("bad", opts, rng), std::invalid_argument);
}

TEST(IspLike, CustomScaleWorks) {
  util::Rng rng(8);
  IspOptions opts;
  opts.num_nodes = 30;
  opts.num_links = 55;
  opts.num_servers = 4;
  opts.structure_seed = 77;
  const Topology t = make_isp_like("custom", opts, rng);
  EXPECT_EQ(t.num_switches(), 30u);
  EXPECT_EQ(t.num_links(), 55u);
  EXPECT_EQ(t.servers.size(), 4u);
  EXPECT_TRUE(graph::is_connected(t.graph));
}

}  // namespace
}  // namespace nfvm::topo
