#include "nfv/request.h"

#include <gtest/gtest.h>

namespace nfvm::nfv {
namespace {

Request valid_request() {
  Request r;
  r.id = 1;
  r.source = 0;
  r.destinations = {2, 3};
  r.bandwidth_mbps = 100.0;
  r.chain = ServiceChain({NetworkFunction::kNat, NetworkFunction::kFirewall});
  return r;
}

graph::Graph path_graph(std::size_t n) {
  graph::Graph g(n);
  for (graph::VertexId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 1.0);
  return g;
}

TEST(Request, ValidPasses) {
  const graph::Graph g = path_graph(4);
  EXPECT_NO_THROW(validate_request(valid_request(), g));
}

TEST(Request, ComputeDemandDelegatesToChain) {
  const Request r = valid_request();
  EXPECT_DOUBLE_EQ(r.compute_demand_mhz(), r.chain.compute_demand_mhz(100.0));
}

TEST(Request, SourceOutOfRange) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.source = 9;
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, EmptyDestinations) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.destinations.clear();
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, DuplicateDestination) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.destinations = {2, 2};
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, DestinationOutOfRange) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.destinations = {2, 9};
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, SourceAsDestination) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.destinations = {0, 2};
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, NonPositiveBandwidth) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.bandwidth_mbps = 0.0;
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
  r.bandwidth_mbps = -10.0;
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, EmptyChainRejected) {
  const graph::Graph g = path_graph(4);
  Request r = valid_request();
  r.chain = ServiceChain();
  EXPECT_THROW(validate_request(r, g), std::invalid_argument);
}

TEST(Request, ToStringMentionsPieces) {
  const Request r = valid_request();
  const std::string s = r.to_string();
  EXPECT_NE(s.find("r1"), std::string::npos);
  EXPECT_NE(s.find("s=0"), std::string::npos);
  EXPECT_NE(s.find("NAT"), std::string::npos);
}

}  // namespace
}  // namespace nfvm::nfv
