#include "sim/request_gen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "topology/waxman.h"

namespace nfvm::sim {
namespace {

TEST(RequestGen, GeneratesValidRequests) {
  util::Rng rng(1);
  const topo::Topology t = topo::make_waxman(50, rng);
  RequestGenerator gen(t, rng);
  for (int i = 0; i < 200; ++i) {
    const nfv::Request r = gen.next();
    EXPECT_NO_THROW(nfv::validate_request(r, t.graph));
  }
}

TEST(RequestGen, IdsAreSequentialFromOne) {
  util::Rng rng(2);
  const topo::Topology t = topo::make_waxman(30, rng);
  RequestGenerator gen(t, rng);
  EXPECT_EQ(gen.next().id, 1u);
  EXPECT_EQ(gen.next().id, 2u);
  EXPECT_EQ(gen.next().id, 3u);
}

TEST(RequestGen, BandwidthWithinPaperRange) {
  util::Rng rng(3);
  const topo::Topology t = topo::make_waxman(40, rng);
  RequestGenerator gen(t, rng);
  for (int i = 0; i < 300; ++i) {
    const nfv::Request r = gen.next();
    EXPECT_GE(r.bandwidth_mbps, 50.0);
    EXPECT_LT(r.bandwidth_mbps, 200.0);
  }
}

TEST(RequestGen, DestinationCountBoundedByRatio) {
  util::Rng rng(4);
  const topo::Topology t = topo::make_waxman(100, rng);
  RequestGenOptions opts;
  opts.min_dest_ratio = 0.2;
  opts.max_dest_ratio = 0.2;
  RequestGenerator gen(t, rng, opts);
  for (int i = 0; i < 300; ++i) {
    const nfv::Request r = gen.next();
    EXPECT_GE(r.destinations.size(), 1u);
    EXPECT_LE(r.destinations.size(), 20u);  // 0.2 * 100
  }
}

TEST(RequestGen, SmallRatioStillYieldsOneDestination) {
  util::Rng rng(5);
  const topo::Topology t = topo::make_waxman(10, rng);
  RequestGenOptions opts;
  opts.min_dest_ratio = 0.05;  // floor(0.5) = 0 -> clamped to 1
  opts.max_dest_ratio = 0.05;
  RequestGenerator gen(t, rng, opts);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.next().destinations.size(), 1u);
  }
}

TEST(RequestGen, DestinationsDistinctAndExcludeSource) {
  util::Rng rng(6);
  const topo::Topology t = topo::make_waxman(60, rng);
  RequestGenerator gen(t, rng);
  for (int i = 0; i < 300; ++i) {
    const nfv::Request r = gen.next();
    std::set<graph::VertexId> distinct(r.destinations.begin(), r.destinations.end());
    EXPECT_EQ(distinct.size(), r.destinations.size());
    EXPECT_EQ(distinct.count(r.source), 0u);
  }
}

TEST(RequestGen, ChainLengthWithinBounds) {
  util::Rng rng(7);
  const topo::Topology t = topo::make_waxman(30, rng);
  RequestGenOptions opts;
  opts.min_chain_length = 2;
  opts.max_chain_length = 4;
  RequestGenerator gen(t, rng, opts);
  for (int i = 0; i < 200; ++i) {
    const nfv::Request r = gen.next();
    EXPECT_GE(r.chain.length(), 2u);
    EXPECT_LE(r.chain.length(), 4u);
  }
}

TEST(RequestGen, SequenceProducesRequestedCount) {
  util::Rng rng(8);
  const topo::Topology t = topo::make_waxman(30, rng);
  RequestGenerator gen(t, rng);
  const auto seq = gen.sequence(25);
  EXPECT_EQ(seq.size(), 25u);
  EXPECT_EQ(seq.back().id, 25u);
}

TEST(RequestGen, DeterministicGivenSeed) {
  const topo::Topology t = [] {
    util::Rng rng(9);
    return topo::make_waxman(30, rng);
  }();
  util::Rng ra(100);
  util::Rng rb(100);
  RequestGenerator ga(t, ra);
  RequestGenerator gb(t, rb);
  for (int i = 0; i < 50; ++i) {
    const nfv::Request a = ga.next();
    const nfv::Request b = gb.next();
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.destinations, b.destinations);
    EXPECT_DOUBLE_EQ(a.bandwidth_mbps, b.bandwidth_mbps);
    EXPECT_EQ(a.chain, b.chain);
  }
}

TEST(RequestGen, RejectsBadOptions) {
  util::Rng rng(10);
  const topo::Topology t = topo::make_waxman(30, rng);
  RequestGenOptions opts;
  opts.min_dest_ratio = 0.0;
  EXPECT_THROW(RequestGenerator(t, rng, opts), std::invalid_argument);
  opts = {};
  opts.min_bandwidth_mbps = -1;
  EXPECT_THROW(RequestGenerator(t, rng, opts), std::invalid_argument);
  opts = {};
  opts.min_chain_length = 4;
  opts.max_chain_length = 2;
  EXPECT_THROW(RequestGenerator(t, rng, opts), std::invalid_argument);
}

TEST(RequestGen, TinyTopologyRejected) {
  topo::Topology t;
  t.graph = graph::Graph(1);
  util::Rng rng(11);
  EXPECT_THROW(RequestGenerator(t, rng), std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::sim
