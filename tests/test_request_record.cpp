// RequestRecord provenance: populated when recording is enabled, absent when
// it is not, and never influencing the decisions themselves.
#include "core/request_record.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/online.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology small_topology(std::uint64_t seed = 5) {
  util::Rng rng(seed);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  return topo::make_waxman(40, rng, wo);
}

std::vector<nfv::Request> workload(const topo::Topology& topo, std::size_t n,
                                   std::uint64_t seed = 6) {
  util::Rng rng(seed);
  sim::RequestGenerator gen(topo, rng);
  return gen.sequence(n);
}

std::unique_ptr<OnlineAlgorithm> make_algorithm(const std::string& name,
                                                const topo::Topology& topo) {
  if (name == "Online_CP") return std::make_unique<OnlineCp>(topo);
  if (name == "SP") return std::make_unique<OnlineSp>(topo);
  return std::make_unique<OnlineSpStatic>(topo);
}

TEST(RequestRecord, AbsentByDefault) {
  const topo::Topology topo = small_topology();
  OnlineCp algo(topo);
  EXPECT_FALSE(algo.record_provenance());
  const auto requests = workload(topo, 3);
  for (const nfv::Request& r : requests) {
    const AdmissionDecision d = algo.process(r);
    EXPECT_EQ(d.record, nullptr);
  }
}

#if NFVM_OBS

TEST(RequestRecord, PopulatedForEveryAlgorithm) {
  const topo::Topology topo = small_topology();
  // Long enough that resources run out and every algorithm rejects some
  // requests, so both provenance shapes are exercised.
  const auto requests = workload(topo, 200);
  for (const std::string name : {"Online_CP", "SP", "SP_static"}) {
    auto algo = make_algorithm(name, topo);
    algo->set_record_provenance(true);
    bool saw_admit = false;
    bool saw_reject = false;
    for (const nfv::Request& r : requests) {
      const AdmissionDecision d = algo->process(r);
      ASSERT_NE(d.record, nullptr) << name;
      const RequestRecord& rec = *d.record;
      EXPECT_EQ(rec.request_id, r.id) << name;
      EXPECT_EQ(rec.admitted, d.admitted) << name;
      EXPECT_EQ(rec.servers_total, topo.servers.size()) << name;
      EXPECT_GE(rec.servers_total, rec.servers_eligible) << name;
      EXPECT_GE(rec.servers_eligible, rec.servers_evaluated) << name;
      EXPECT_GT(rec.total_us, 0.0) << name;
      EXPECT_GE(rec.eval_us, 0.0) << name;
      // Disjoint phases must fit inside the whole call.
      EXPECT_LE(rec.classify_us + rec.closure_us + rec.eval_us +
                    rec.realize_us + rec.view_patch_us,
                rec.total_us * 1.5 + 50.0)
          << name;
      if (d.admitted) {
        saw_admit = true;
        EXPECT_GE(rec.candidates_feasible, 1u) << name;
        EXPECT_GE(rec.chosen_server, 0) << name;
      } else {
        saw_reject = true;
        EXPECT_EQ(rec.chosen_server, -1) << name;
        // Every rejection leaves a gate trail (unless nothing was eligible,
        // which the skip counters themselves record).
        EXPECT_GT(rec.skipped_compute + rec.skipped_sigma_v +
                      rec.failed_disconnected + rec.failed_sigma_e +
                      rec.failed_delay + rec.failed_capacity +
                      rec.servers_total - rec.servers_eligible,
                  0u)
            << name;
      }
    }
    EXPECT_TRUE(saw_admit) << name;
    EXPECT_TRUE(saw_reject) << name;
  }
}

TEST(RequestRecord, CpCostBreakdownSumsToTotal) {
  const topo::Topology topo = small_topology();
  const auto requests = workload(topo, 30);
  OnlineCp algo(topo);
  algo.set_record_provenance(true);
  std::size_t admitted = 0;
  for (const nfv::Request& r : requests) {
    const AdmissionDecision d = algo.process(r);
    if (!d.admitted) continue;
    ++admitted;
    const RequestRecord& rec = *d.record;
    EXPECT_NEAR(rec.cost_total,
                rec.cost_steiner + rec.cost_server + rec.cost_backhaul,
                1e-9 + 1e-9 * rec.cost_total);
    EXPECT_GE(rec.cost_steiner, 0.0);
    EXPECT_GE(rec.cost_server, 0.0);
    EXPECT_GE(rec.cost_backhaul, 0.0);
  }
  EXPECT_GT(admitted, 0u);
}

TEST(RequestRecord, RecordingDoesNotChangeDecisions) {
  const topo::Topology topo = small_topology();
  const auto requests = workload(topo, 50);
  for (const std::string name : {"Online_CP", "SP", "SP_static"}) {
    auto plain = make_algorithm(name, topo);
    auto recorded = make_algorithm(name, topo);
    recorded->set_record_provenance(true);
    for (const nfv::Request& r : requests) {
      const AdmissionDecision a = plain->process(r);
      const AdmissionDecision b = recorded->process(r);
      ASSERT_EQ(a.admitted, b.admitted) << name << " request " << r.id;
      if (a.admitted) {
        EXPECT_DOUBLE_EQ(a.tree.cost, b.tree.cost) << name << " request " << r.id;
        EXPECT_EQ(a.tree.servers, b.tree.servers) << name << " request " << r.id;
      } else {
        EXPECT_EQ(a.reject_cause, b.reject_cause) << name << " request " << r.id;
      }
    }
  }
}

TEST(RequestRecord, SimulatorPlumbsProvenanceThroughOptions) {
  const topo::Topology topo = small_topology();
  const auto requests = workload(topo, 20);
  OnlineCp algo(topo);
  sim::SimulatorOptions opts;
  opts.record_provenance = true;
  const sim::SimulationMetrics m = sim::run_online(algo, requests, opts);
  EXPECT_EQ(m.num_requests, requests.size());
  // Phase sums were accumulated from the per-request records.
  EXPECT_GT(m.phase_eval_us, 0.0);
  EXPECT_GT(m.phase_closure_us, 0.0);
}

#endif  // NFVM_OBS

}  // namespace
}  // namespace nfvm::core
