#include "nfv/resources.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nfvm::nfv {
namespace {

topo::Topology small_topology() {
  topo::Topology t;
  t.name = "small";
  t.graph = graph::Graph(3);
  t.graph.add_edge(0, 1, 1.0);  // e0
  t.graph.add_edge(1, 2, 1.0);  // e1
  t.servers = {1};
  t.link_bandwidth = {1000.0, 2000.0};
  t.server_compute = {0.0, 8000.0, 0.0};
  return t;
}

TEST(ResourceState, InitializesToFullCapacity) {
  const ResourceState state(small_topology());
  EXPECT_DOUBLE_EQ(state.residual_bandwidth(0), 1000.0);
  EXPECT_DOUBLE_EQ(state.residual_bandwidth(1), 2000.0);
  EXPECT_DOUBLE_EQ(state.residual_compute(1), 8000.0);
  EXPECT_DOUBLE_EQ(state.bandwidth_utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(state.compute_utilization(1), 0.0);
}

TEST(ResourceState, RejectsUnassignedCapacities) {
  topo::Topology t = small_topology();
  t.link_bandwidth.clear();
  EXPECT_THROW(ResourceState{t}, std::invalid_argument);
}

TEST(ResourceState, AllocateAndUtilization) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{0, 250.0}};
  fp.compute = {{1, 2000.0}};
  EXPECT_TRUE(state.can_allocate(fp));
  state.allocate(fp);
  EXPECT_DOUBLE_EQ(state.residual_bandwidth(0), 750.0);
  EXPECT_DOUBLE_EQ(state.bandwidth_utilization(0), 0.25);
  EXPECT_DOUBLE_EQ(state.compute_utilization(1), 0.25);
}

TEST(ResourceState, RepeatedEntriesAggregate) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{0, 600.0}, {0, 600.0}};  // 1200 > 1000 total
  EXPECT_FALSE(state.can_allocate(fp));
  EXPECT_THROW(state.allocate(fp), std::runtime_error);
  // State unchanged after the failed allocation.
  EXPECT_DOUBLE_EQ(state.residual_bandwidth(0), 1000.0);
}

TEST(ResourceState, ExactFitAllocates) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{0, 1000.0}};
  EXPECT_TRUE(state.can_allocate(fp));
  state.allocate(fp);
  EXPECT_NEAR(state.residual_bandwidth(0), 0.0, 1e-9);
  EXPECT_NEAR(state.bandwidth_utilization(0), 1.0, 1e-12);
}

TEST(ResourceState, ComputeOverflowRejected) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.compute = {{1, 9000.0}};
  EXPECT_FALSE(state.can_allocate(fp));
  EXPECT_THROW(state.allocate(fp), std::runtime_error);
}

TEST(ResourceState, ReleaseRestores) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{1, 500.0}};
  fp.compute = {{1, 1000.0}};
  state.allocate(fp);
  state.release(fp);
  EXPECT_DOUBLE_EQ(state.residual_bandwidth(1), 2000.0);
  EXPECT_DOUBLE_EQ(state.residual_compute(1), 8000.0);
}

TEST(ResourceState, DoubleReleaseRejected) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{1, 500.0}};
  state.allocate(fp);
  state.release(fp);
  EXPECT_THROW(state.release(fp), std::runtime_error);
  EXPECT_DOUBLE_EQ(state.residual_bandwidth(1), 2000.0);
}

TEST(ResourceState, NegativeFootprintRejected) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{0, -5.0}};
  EXPECT_THROW(state.can_allocate(fp), std::invalid_argument);
}

TEST(ResourceState, BadIdsThrow) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{9, 10.0}};
  EXPECT_THROW(state.can_allocate(fp), std::out_of_range);
  Footprint fp2;
  fp2.compute = {{9, 10.0}};
  EXPECT_THROW(state.allocate(fp2), std::out_of_range);
}

TEST(ResourceState, EmptyFootprintAlwaysFits) {
  ResourceState state(small_topology());
  Footprint fp;
  EXPECT_TRUE(fp.empty());
  EXPECT_TRUE(state.can_allocate(fp));
  EXPECT_NO_THROW(state.allocate(fp));
  EXPECT_NO_THROW(state.release(fp));
}

TEST(ResourceState, TotalsTrackAllocations) {
  ResourceState state(small_topology());
  Footprint fp;
  fp.bandwidth = {{0, 100.0}, {1, 300.0}};
  fp.compute = {{1, 1500.0}};
  state.allocate(fp);
  EXPECT_DOUBLE_EQ(state.total_allocated_bandwidth(), 400.0);
  EXPECT_DOUBLE_EQ(state.total_allocated_compute(), 1500.0);
}

TEST(ResourceState, ManyAllocationsConserveTotals) {
  util::Rng rng(9);
  ResourceState state(small_topology());
  std::vector<Footprint> fps;
  for (int i = 0; i < 20; ++i) {
    Footprint fp;
    fp.bandwidth = {{static_cast<graph::EdgeId>(i % 2), rng.uniform_real(1, 20)}};
    if (!state.can_allocate(fp)) break;
    state.allocate(fp);
    fps.push_back(fp);
  }
  for (const Footprint& fp : fps) state.release(fp);
  EXPECT_NEAR(state.total_allocated_bandwidth(), 0.0, 1e-6);
}

}  // namespace
}  // namespace nfvm::nfv
