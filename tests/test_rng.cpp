#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <array>
#include <set>
#include <vector>

namespace nfvm::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(99);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(123);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRealRange) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_real(50.0, 200.0);
    EXPECT_GE(v, 50.0);
    EXPECT_LT(v, 200.0);
  }
}

TEST(Rng, UniformRealRejectsInvertedBounds) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_real(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialPositiveWithCorrectMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(2.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(23);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> orig = v;
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    rng.shuffle(std::span<int>(v));
    changed = (v != orig);
  }
  EXPECT_TRUE(changed);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(37);
  const auto picks = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (std::size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(41);
  const auto picks = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedCount) {
  Rng rng(41);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleZeroCountEmpty) {
  Rng rng(43);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.split();
  // Child stream should not mirror the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, ChiSquareUniformityOfNextBelow) {
  // 16 buckets, 16000 draws: expected 1000 per bucket. Chi-square with 15
  // degrees of freedom; 99.9th percentile ~ 37.7. A deterministic seed makes
  // this a regression test, not a flaky statistical one.
  Rng rng(20260706);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 16000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, ChiSquareUniformityOfUniform01) {
  Rng rng(777);
  constexpr int kBuckets = 20;
  constexpr int kDraws = 20000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    const int b = static_cast<int>(rng.uniform01() * kBuckets);
    ++counts[b < kBuckets ? b : kBuckets - 1];
  }
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 99.9th percentile of chi-square with 19 dof ~ 43.8.
  EXPECT_LT(chi2, 43.8);
}

TEST(Rng, LaggedAutocorrelationLow) {
  // Pearson correlation between consecutive uniform01 draws stays near 0.
  Rng rng(31337);
  const int n = 20000;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  double prev = rng.uniform01();
  for (int i = 0; i < n; ++i) {
    const double cur = rng.uniform01();
    sx += prev; sy += cur;
    sxx += prev * prev; syy += cur * cur; sxy += prev * cur;
    prev = cur;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(std::abs(corr), 0.03);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace nfvm::util
