#include "io/serialize.h"

#include <gtest/gtest.h>

#include "topology/geant.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::io {
namespace {

TEST(Serialize, RoundTripWaxman) {
  util::Rng rng(1);
  const topo::Topology orig = topo::make_waxman(30, rng);
  const topo::Topology copy = topology_from_string(topology_to_string(orig));

  EXPECT_EQ(copy.name, orig.name);
  EXPECT_EQ(copy.num_switches(), orig.num_switches());
  ASSERT_EQ(copy.num_links(), orig.num_links());
  EXPECT_EQ(copy.servers, orig.servers);
  for (graph::EdgeId e = 0; e < orig.num_links(); ++e) {
    EXPECT_EQ(copy.graph.edge(e).u, orig.graph.edge(e).u);
    EXPECT_EQ(copy.graph.edge(e).v, orig.graph.edge(e).v);
    EXPECT_NEAR(copy.link_bandwidth[e], orig.link_bandwidth[e], 1e-6);
  }
  for (graph::VertexId v : orig.servers) {
    EXPECT_NEAR(copy.server_compute[v], orig.server_compute[v], 1e-6);
  }
  ASSERT_EQ(copy.coords.size(), orig.coords.size());
  for (std::size_t i = 0; i < orig.coords.size(); ++i) {
    EXPECT_NEAR(copy.coords[i].x, orig.coords[i].x, 1e-6);
    EXPECT_NEAR(copy.coords[i].y, orig.coords[i].y, 1e-6);
  }
  EXPECT_NO_THROW(topo::validate_topology(copy));
}

TEST(Serialize, RoundTripGeant) {
  util::Rng rng(2);
  const topo::Topology orig = topo::make_geant(rng);
  const topo::Topology copy = topology_from_string(topology_to_string(orig));
  EXPECT_EQ(copy.num_switches(), 40u);
  EXPECT_EQ(copy.num_links(), 61u);
  EXPECT_EQ(copy.servers.size(), 9u);
}

TEST(Serialize, WriteRejectsUnassignedCapacities) {
  topo::Topology t;
  t.graph = graph::Graph(2);
  t.graph.add_edge(0, 1, 1.0);
  EXPECT_THROW(topology_to_string(t), std::invalid_argument);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "nfvm-topology 1\n"
      "\n"
      "name demo\n"
      "nodes 3\n"
      "# another comment\n"
      "server 1 5000\n"
      "edge 0 1 1000\n"
      "edge 1 2 2000\n";
  const topo::Topology t = topology_from_string(text);
  EXPECT_EQ(t.name, "demo");
  EXPECT_EQ(t.num_switches(), 3u);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.servers, (std::vector<graph::VertexId>{1}));
  EXPECT_DOUBLE_EQ(t.server_compute[1], 5000.0);
  EXPECT_DOUBLE_EQ(t.link_bandwidth[1], 2000.0);
}

TEST(Serialize, MissingHeaderRejected) {
  EXPECT_THROW(topology_from_string("nodes 3\n"), std::runtime_error);
}

TEST(Serialize, WrongVersionRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 2\nnodes 3\n"),
               std::runtime_error);
}

TEST(Serialize, DirectiveBeforeNodesRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nedge 0 1 100\n"),
               std::runtime_error);
}

TEST(Serialize, OutOfRangeVertexRejected) {
  EXPECT_THROW(
      topology_from_string("nfvm-topology 1\nnodes 2\nedge 0 5 100\n"),
      std::runtime_error);
}

TEST(Serialize, UnknownDirectiveRejected) {
  EXPECT_THROW(
      topology_from_string("nfvm-topology 1\nnodes 2\nfrobnicate 1\n"),
      std::runtime_error);
}

TEST(Serialize, NonPositiveBandwidthRejected) {
  EXPECT_THROW(
      topology_from_string("nfvm-topology 1\nnodes 2\nedge 0 1 0\n"),
      std::runtime_error);
}

TEST(Serialize, DuplicateServerRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nnodes 2\nserver 0 100\n"
                                    "server 0 200\nedge 0 1 10\n"),
               std::runtime_error);
}

TEST(Serialize, DuplicateNodesDirectiveRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nnodes 2\nnodes 3\n"),
               std::runtime_error);
}

TEST(Serialize, RoundTripWithDelays) {
  util::Rng rng(20);
  topo::Topology orig = topo::make_waxman(20, rng);
  topo::assign_delays(orig, rng, 0.2, 3.0);
  const topo::Topology copy = topology_from_string(topology_to_string(orig));
  ASSERT_TRUE(copy.has_delays());
  ASSERT_EQ(copy.link_delay_ms.size(), orig.link_delay_ms.size());
  for (std::size_t e = 0; e < orig.link_delay_ms.size(); ++e) {
    EXPECT_NEAR(copy.link_delay_ms[e], orig.link_delay_ms[e], 1e-9);
  }
}

TEST(Serialize, RoundTripWithTableCapacities) {
  util::Rng rng(21);
  topo::Topology orig = topo::make_waxman(15, rng);
  topo::assign_table_capacities(orig, 32.0);
  orig.switch_table_capacity[3] = 8.0;
  const topo::Topology copy = topology_from_string(topology_to_string(orig));
  ASSERT_TRUE(copy.has_table_capacities());
  ASSERT_EQ(copy.switch_table_capacity.size(), orig.switch_table_capacity.size());
  EXPECT_DOUBLE_EQ(copy.switch_table_capacity[3], 8.0);
  EXPECT_DOUBLE_EQ(copy.switch_table_capacity[0], 32.0);
}

TEST(Serialize, BadTableLineRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nnodes 2\ntable 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nnodes 2\ntable 9 5\n"),
               std::runtime_error);
}

TEST(Serialize, MixedDelayPresenceRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nnodes 3\n"
                                    "edge 0 1 100 1.5\nedge 1 2 100\n"),
               std::runtime_error);
}

TEST(Serialize, NonPositiveDelayRejected) {
  EXPECT_THROW(topology_from_string("nfvm-topology 1\nnodes 2\n"
                                    "edge 0 1 100 0\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace nfvm::io
