// serve/fault_plan.h: plan parsing and validation, per-line fault lookup,
// and the determinism of the generated garbage lines (same plan -> same
// injected bytes, the property the fault-smoke CI job relies on).
#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/fault_plan.h"

namespace nfvm::serve {
namespace {

constexpr std::string_view kValidPlan = R"({
  "schema": "nfvm-fault-plan-v1",
  "seed": 42,
  "faults": [
    {"line": 100, "kind": "stall_ms", "value": 50},
    {"line": 120, "kind": "garbage"},
    {"line": 120, "kind": "dup_depart"},
    {"line": 130, "kind": "unknown_depart"},
    {"line": 200, "kind": "kill"}
  ]
})";

TEST(FaultPlan, ParsesAndIndexesByLine) {
  const FaultPlan plan = FaultPlan::parse(kValidPlan);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.num_faults(), 5u);
  EXPECT_EQ(plan.seed(), 42u);

  ASSERT_NE(plan.at(100), nullptr);
  ASSERT_EQ(plan.at(100)->size(), 1u);
  EXPECT_EQ((*plan.at(100))[0].kind, FaultKind::kStallMs);
  EXPECT_EQ((*plan.at(100))[0].value, 50.0);

  // Two faults on the same line, kept in plan order.
  ASSERT_NE(plan.at(120), nullptr);
  ASSERT_EQ(plan.at(120)->size(), 2u);
  EXPECT_EQ((*plan.at(120))[0].kind, FaultKind::kGarbage);
  EXPECT_EQ((*plan.at(120))[1].kind, FaultKind::kDupDepart);

  EXPECT_EQ(plan.at(99), nullptr);
  EXPECT_EQ(plan.at(0), nullptr);
}

TEST(FaultPlan, DefaultPlanIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_faults(), 0u);
  EXPECT_EQ(plan.at(1), nullptr);
}

TEST(FaultPlan, GarbageLinesAreDeterministicAndNeverJson) {
  const FaultPlan a = FaultPlan::parse(kValidPlan);
  const FaultPlan b = FaultPlan::parse(kValidPlan);
  EXPECT_EQ(a.garbage_line(120), b.garbage_line(120));
  EXPECT_NE(a.garbage_line(120), a.garbage_line(121));
  // Starts with '}' so it can never parse as a JSON value.
  EXPECT_EQ(a.garbage_line(120).front(), '}');
  EXPECT_FALSE(a.garbage_line(120).empty());
}

TEST(FaultPlan, SeedChangesGarbage) {
  const FaultPlan a = FaultPlan::parse(kValidPlan);
  const FaultPlan b = FaultPlan::parse(
      R"({"schema":"nfvm-fault-plan-v1","seed":43,"faults":[]})");
  EXPECT_NE(a.garbage_line(120), b.garbage_line(120));
}

TEST(FaultPlan, RejectsMalformedPlans) {
  // Wrong schema.
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema":"other","seed":1,"faults":[]})"),
      std::invalid_argument);
  // Unknown kind.
  EXPECT_THROW(FaultPlan::parse(
                   R"({"schema":"nfvm-fault-plan-v1","seed":1,)"
                   R"("faults":[{"line":1,"kind":"explode"}]})"),
               std::invalid_argument);
  // Line 0 (lines are 1-based).
  EXPECT_THROW(FaultPlan::parse(
                   R"({"schema":"nfvm-fault-plan-v1","seed":1,)"
                   R"("faults":[{"line":0,"kind":"garbage"}]})"),
               std::invalid_argument);
  // Missing faults array.
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema":"nfvm-fault-plan-v1","seed":1})"),
      std::invalid_argument);
  // Not JSON at all.
  EXPECT_THROW(FaultPlan::parse("}{"), std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::serve
