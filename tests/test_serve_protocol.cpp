// serve/protocol.h: command parsing (valid, malformed, invalid), the
// structured error replies with line/offset provenance, reply builder
// shapes, and the arrive/depart trace-line round trip.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "nfv/network_function.h"
#include "serve/protocol.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::serve {
namespace {

topo::Topology make_topo() {
  util::Rng rng(17);
  return topo::make_waxman(30, rng);
}

nfv::Request make_request() {
  nfv::Request request;
  request.id = 42;
  request.source = 3;
  request.destinations = {7, 11, 19};
  request.bandwidth_mbps = 120.5;
  request.chain = nfv::ServiceChain(
      {nfv::NetworkFunction::kNat, nfv::NetworkFunction::kFirewall});
  request.max_delay_ms = 0.0;
  return request;
}

std::optional<Command> parse(const topo::Topology& topo, std::string_view line,
                             ParseFailure& failure,
                             const LinePosition& position = {0, 1}) {
  return parse_command(line, position, topo.graph, failure);
}

TEST(ServeProtocol, ArriveLineRoundTrips) {
  const topo::Topology topo = make_topo();
  const nfv::Request request = make_request();
  ParseFailure failure;
  const auto command = parse(topo, arrive_line(request), failure);
  ASSERT_TRUE(command.has_value()) << failure.reply;
  EXPECT_EQ(command->kind, CommandKind::kArrive);
  EXPECT_EQ(command->request.id, request.id);
  EXPECT_EQ(command->request.source, request.source);
  EXPECT_EQ(command->request.destinations, request.destinations);
  EXPECT_EQ(command->request.bandwidth_mbps, request.bandwidth_mbps);
  EXPECT_EQ(command->request.chain.functions(), request.chain.functions());
  EXPECT_EQ(command->request.max_delay_ms, request.max_delay_ms);
}

TEST(ServeProtocol, DepartLineRoundTrips) {
  const topo::Topology topo = make_topo();
  ParseFailure failure;
  const auto command = parse(topo, depart_line(42), failure);
  ASSERT_TRUE(command.has_value()) << failure.reply;
  EXPECT_EQ(command->kind, CommandKind::kDepart);
  EXPECT_EQ(command->request.id, 42u);
}

TEST(ServeProtocol, ControlCommandsParse) {
  const topo::Topology topo = make_topo();
  ParseFailure failure;
  EXPECT_EQ(parse(topo, R"({"cmd":"snapshot"})", failure)->kind,
            CommandKind::kSnapshot);
  EXPECT_EQ(parse(topo, R"({"cmd":"stats"})", failure)->kind,
            CommandKind::kStats);
  EXPECT_EQ(parse(topo, R"({"cmd":"drain"})", failure)->kind,
            CommandKind::kDrain);
}

TEST(ServeProtocol, MalformedJsonYieldsParseErrorWithPosition) {
  const topo::Topology topo = make_topo();
  ParseFailure failure;
  const LinePosition position{1234, 57};
  EXPECT_FALSE(parse(topo, "}garbage{{", failure, position).has_value());
  EXPECT_TRUE(failure.malformed_json);
  EXPECT_NE(failure.reply.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(failure.reply.find("\"error\":\"parse\""), std::string::npos);
  EXPECT_NE(failure.reply.find("\"line\":57"), std::string::npos);
  EXPECT_NE(failure.reply.find("\"offset\":1234"), std::string::npos);
}

TEST(ServeProtocol, UnknownCommandIsInvalidNotParse) {
  const topo::Topology topo = make_topo();
  ParseFailure failure;
  EXPECT_FALSE(parse(topo, R"({"cmd":"explode"})", failure).has_value());
  EXPECT_FALSE(failure.malformed_json);
  EXPECT_NE(failure.reply.find("\"error\":\"invalid\""), std::string::npos);
}

TEST(ServeProtocol, SemanticValidationRunsAtParseTime) {
  const topo::Topology topo = make_topo();
  ParseFailure failure;
  // Vertex out of range.
  EXPECT_FALSE(parse(topo,
                     R"({"cmd":"arrive","id":1,"source":999,"destinations":[2],)"
                     R"("bandwidth_mbps":10,"chain":["NAT"]})",
                     failure)
                   .has_value());
  EXPECT_FALSE(failure.malformed_json);
  // Non-positive bandwidth.
  EXPECT_FALSE(parse(topo,
                     R"({"cmd":"arrive","id":1,"source":1,"destinations":[2],)"
                     R"("bandwidth_mbps":0,"chain":["NAT"]})",
                     failure)
                   .has_value());
  // Unknown network function.
  EXPECT_FALSE(parse(topo,
                     R"({"cmd":"arrive","id":1,"source":1,"destinations":[2],)"
                     R"("bandwidth_mbps":10,"chain":["Teleporter"]})",
                     failure)
                   .has_value());
  // Destination equal to source.
  EXPECT_FALSE(parse(topo,
                     R"({"cmd":"arrive","id":1,"source":1,"destinations":[1],)"
                     R"("bandwidth_mbps":10,"chain":["NAT"]})",
                     failure)
                   .has_value());
}

TEST(ServeProtocol, ReplyBuildersCarryTheContractFields) {
  core::AdmissionDecision admitted;
  admitted.admitted = true;
  admitted.tree.cost = 12.5;
  const std::string a = arrive_reply(7, admitted, 3);
  EXPECT_NE(a.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(a.find("\"admitted\":true"), std::string::npos);
  EXPECT_NE(a.find("\"active\":3"), std::string::npos);

  core::AdmissionDecision rejected;
  rejected.admitted = false;
  rejected.reject_reason = "no feasible server";
  rejected.reject_cause = core::RejectCause::kCompute;
  const std::string r = arrive_reply(8, rejected, 3);
  EXPECT_NE(r.find("\"admitted\":false"), std::string::npos);
  EXPECT_NE(r.find("\"reject_cause\":\"compute\""), std::string::npos);

  const std::string s = shed_reply(9);
  EXPECT_NE(s.find("\"reject_cause\":\"overload\""), std::string::npos);
  EXPECT_NE(s.find("\"shed\":true"), std::string::npos);

  const std::string d = depart_reply(7, /*released=*/true, 2);
  EXPECT_NE(d.find("\"released\":true"), std::string::npos);

  const std::string e = error_reply("invalid", "unknown id", {99, 4});
  EXPECT_NE(e.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(e.find("\"line\":4"), std::string::npos);
  EXPECT_NE(e.find("\"offset\":99"), std::string::npos);
}

}  // namespace
}  // namespace nfvm::serve
