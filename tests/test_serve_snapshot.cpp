// serve/snapshot.h + serve/daemon.h: snapshot serialization round trip
// (bit-exact residual doubles), atomic write/load, truncated-file rejection
// with byte-offset provenance, and the tentpole guarantee - a daemon
// restored from a mid-stream snapshot continues the reply stream
// byte-identically to an uninterrupted run, with departures interleaved, at
// thread counts 1 and 4.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/online_cp.h"
#include "core/online_view.h"
#include "serve/daemon.h"
#include "serve/snapshot.h"
#include "serve/trace_gen.h"
#include "topology/waxman.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfvm::serve {
namespace {

topo::Topology make_topo() {
  util::Rng rng(11);
  return topo::make_waxman(40, rng);
}

std::map<std::string, std::string> test_config() {
  return {{"topology", "waxman"}, {"nodes", "40"}, {"seed", "11"}};
}

std::string make_trace(const topo::Topology& topo, std::size_t requests) {
  std::ostringstream out;
  util::Rng rng(23);
  TraceGenOptions options;
  options.num_requests = requests;
  options.arrival_rate = 20.0;   // high load so rejections occur too
  options.mean_duration = 40.0;
  write_serve_trace(out, topo, rng, options);
  return out.str();
}

/// First `lines` lines of `text` (trailing newlines included).
std::string head_lines(const std::string& text, std::size_t lines) {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    pos = text.find('\n', pos);
    if (pos == std::string::npos) return text;
    ++pos;
  }
  return text.substr(0, pos);
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (char c : text) n += c == '\n';
  return n;
}

std::string run_daemon(core::OnlineAlgorithm& algorithm,
                       const std::string& input, const DaemonOptions& options,
                       const Snapshot* restore_from = nullptr) {
  Daemon daemon(algorithm, test_config(), options);
  if (restore_from != nullptr) daemon.restore(*restore_from);
  std::istringstream in(input);
  IstreamLineSource source(in);
  std::ostringstream out;
  daemon.run(source, out);
  return out.str();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Serialization round trip
// ---------------------------------------------------------------------------

TEST(ServeSnapshot, RoundTripIsBitExact) {
  Snapshot snapshot;
  snapshot.seq = 7;
  snapshot.algorithm = "Online_CP";
  snapshot.config = {{"nodes", "40"}, {"topology", "waxman"}};
  snapshot.lines_consumed = 123;
  snapshot.bytes_consumed = 45678;
  snapshot.replies_emitted = 123;
  snapshot.num_admitted = 60;
  snapshot.num_rejected = 3;
  // Values with no short decimal representation - the round trip must
  // reproduce every bit, not just a near value.
  snapshot.residuals.bandwidth = {0.1 + 0.2, 1.0 / 3.0, 1e-300, 1000.0};
  snapshot.residuals.compute = {2999.9999999999995, 0.0};
  snapshot.residuals.table = {};
  snapshot.counters.lines = 123;
  snapshot.counters.admitted = 60;
  snapshot.counters.rejected = 3;
  snapshot.counters.departed = 20;
  ActiveEntry entry;
  entry.id = 41;
  entry.footprint.bandwidth = {{2, 120.5}, {5, 120.5}};
  entry.footprint.compute = {{3, 301.25}};
  entry.footprint.table_entries = {2, 3, 5};
  snapshot.active.push_back(entry);
  snapshot.rejected_pending = {40, 44};

  const std::string path = temp_path("roundtrip.snap");
  write_snapshot(path, snapshot);
  const Snapshot loaded = load_snapshot(path);

  EXPECT_EQ(loaded.seq, snapshot.seq);
  EXPECT_EQ(loaded.algorithm, snapshot.algorithm);
  EXPECT_EQ(loaded.config, snapshot.config);
  EXPECT_EQ(loaded.lines_consumed, snapshot.lines_consumed);
  EXPECT_EQ(loaded.bytes_consumed, snapshot.bytes_consumed);
  EXPECT_EQ(loaded.replies_emitted, snapshot.replies_emitted);
  EXPECT_EQ(loaded.num_admitted, snapshot.num_admitted);
  EXPECT_EQ(loaded.num_rejected, snapshot.num_rejected);
  // Bit-exact: == on doubles, deliberately.
  EXPECT_EQ(loaded.residuals.bandwidth, snapshot.residuals.bandwidth);
  EXPECT_EQ(loaded.residuals.compute, snapshot.residuals.compute);
  EXPECT_EQ(loaded.residuals.table, snapshot.residuals.table);
  EXPECT_EQ(loaded.counters.lines, snapshot.counters.lines);
  EXPECT_EQ(loaded.counters.departed, snapshot.counters.departed);
  ASSERT_EQ(loaded.active.size(), 1u);
  EXPECT_EQ(loaded.active[0].id, entry.id);
  EXPECT_EQ(loaded.active[0].footprint.bandwidth, entry.footprint.bandwidth);
  EXPECT_EQ(loaded.active[0].footprint.compute, entry.footprint.compute);
  EXPECT_EQ(loaded.active[0].footprint.table_entries,
            entry.footprint.table_entries);
  EXPECT_EQ(loaded.rejected_pending, snapshot.rejected_pending);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, TruncatedFileFailsWithPathAndOffset) {
  const std::string path =
      std::string(NFVM_SOURCE_DIR) + "/tests/data/snapshot_truncated.json";
  try {
    load_snapshot(path);
    FAIL() << "truncated snapshot loaded without error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("snapshot_truncated.json"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST(ServeSnapshot, MissingFileFailsCleanly) {
  EXPECT_THROW(load_snapshot(temp_path("does_not_exist.snap")),
               std::runtime_error);
}

TEST(ServeSnapshot, RestoreRejectsWrongTopologyShape) {
  const topo::Topology topo = make_topo();
  core::OnlineCp algorithm(topo);
  Snapshot snapshot;
  snapshot.residuals.bandwidth = {1.0, 2.0};  // wrong link count
  snapshot.residuals.compute.assign(40, 1000.0);
  EXPECT_THROW(restore_into(algorithm, snapshot), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Crash/restore decision-stream equivalence
// ---------------------------------------------------------------------------

void expect_restore_equivalence(std::size_t threads) {
  util::ThreadPool::set_global_threads(threads);
  const topo::Topology topo = make_topo();
  const std::string trace = make_trace(topo, 400);
  const std::size_t total_lines = count_lines(trace);
  const std::size_t cut = total_lines / 2;

  // Reference: one uninterrupted run.
  core::OnlineCp full_algo(topo);
  const std::string full = run_daemon(full_algo, trace, DaemonOptions{});

  // "Crashed" run: consume only the first half; the final snapshot at
  // run() exit covers exactly those lines.
  const std::string snap_path = temp_path("equiv.snap");
  DaemonOptions snap_options;
  snap_options.snapshot_path = snap_path;
  core::OnlineCp crashed_algo(topo);
  const std::string part1 =
      run_daemon(crashed_algo, head_lines(trace, cut), snap_options);
  ASSERT_EQ(count_lines(part1), cut);

  // Restored run over the SAME full trace: the daemon skips the consumed
  // prefix and must continue byte-identically.
  const Snapshot snapshot = load_snapshot(snap_path);
  ASSERT_EQ(snapshot.lines_consumed, cut);
  core::OnlineCp restored_algo(topo);
  const std::string part2 =
      run_daemon(restored_algo, trace, DaemonOptions{}, &snapshot);

  EXPECT_EQ(full, part1 + part2)
      << "reply stream diverged across the restore boundary (threads="
      << threads << ")";
  std::remove(snap_path.c_str());
}

TEST(ServeSnapshot, RestoredStreamIsByteIdenticalSingleThread) {
  expect_restore_equivalence(1);
}

TEST(ServeSnapshot, RestoredStreamIsByteIdenticalFourThreads) {
  expect_restore_equivalence(4);
}

TEST(ServeSnapshot, ViewWeightsAreAPureFunctionOfRestoredResiduals) {
  // The snapshot deliberately does NOT serialize OnlineWeightedView state:
  // its weights are a pure function of the residuals, so rebuilding from
  // bit-exact restored residuals must reproduce them edge-for-edge, while
  // the era counter and patch count - performance state only - may differ.
  const topo::Topology topo = make_topo();
  nfv::ResourceState live(topo);
  const auto weight_against = [&topo](const nfv::ResourceState& state) {
    return [&topo, &state](graph::EdgeId e) {
      return std::pow(2.0, 1.0 - state.residual_bandwidth(e) /
                               state.bandwidth_capacity(e)) -
             1.0;
    };
  };
  core::OnlineWeightedView patched(topo, weight_against(live));
  for (std::uint32_t i = 0; i + 3 < topo.graph.num_edges(); i += 7) {
    nfv::Footprint fp;
    fp.bandwidth = {{i, 55.5}, {i + 3, 27.25}};
    live.allocate(fp);
    patched.apply_allocate(fp);
  }
  ASSERT_GT(patched.patches_applied(), 0u);

  nfv::ResourceState restored(topo);
  restored.restore_residuals(live.export_residuals());
  core::OnlineWeightedView rebuilt(topo, weight_against(restored));

  for (std::uint32_t e = 0; e < topo.graph.num_edges(); ++e) {
    EXPECT_EQ(patched.graph().weight(e), rebuilt.graph().weight(e))  // bit-exact
        << "edge " << e;
  }
  // The incremental and rebuilt views took different paths to that state.
  EXPECT_EQ(rebuilt.patches_applied(), 0u);
  EXPECT_NE(patched.patches_applied(), rebuilt.patches_applied());
}

TEST(ServeSnapshot, RestoreVerifiesConfigEcho) {
  const topo::Topology topo = make_topo();
  core::OnlineCp algorithm(topo);
  Daemon daemon(algorithm, test_config(), DaemonOptions{});
  Snapshot snapshot = daemon.make_snapshot(0, 0, 0);
  snapshot.config["seed"] = "999";
  core::OnlineCp other(topo);
  Daemon fresh(other, test_config(), DaemonOptions{});
  EXPECT_THROW(fresh.restore(snapshot), std::runtime_error);
}

}  // namespace
}  // namespace nfvm::serve
