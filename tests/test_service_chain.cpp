#include "nfv/service_chain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace nfvm::nfv {
namespace {

TEST(ServiceChain, EmptyChainRejected) {
  EXPECT_THROW(ServiceChain(std::vector<NetworkFunction>{}), std::invalid_argument);
}

TEST(ServiceChain, DefaultConstructedIsEmpty) {
  ServiceChain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.length(), 0u);
}

TEST(ServiceChain, ComputeDemandSumsFunctions) {
  const ServiceChain chain({NetworkFunction::kNat, NetworkFunction::kFirewall,
                            NetworkFunction::kIds});
  const double per100 = compute_demand_per_100mbps(NetworkFunction::kNat) +
                        compute_demand_per_100mbps(NetworkFunction::kFirewall) +
                        compute_demand_per_100mbps(NetworkFunction::kIds);
  EXPECT_DOUBLE_EQ(chain.compute_demand_mhz(100.0), per100);
  EXPECT_DOUBLE_EQ(chain.compute_demand_mhz(200.0), 2.0 * per100);
  EXPECT_DOUBLE_EQ(chain.compute_demand_mhz(50.0), 0.5 * per100);
}

TEST(ServiceChain, DemandScalesLinearlyWithBandwidth) {
  const ServiceChain chain({NetworkFunction::kProxy});
  const double d1 = chain.compute_demand_mhz(60.0);
  const double d2 = chain.compute_demand_mhz(120.0);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-9);
}

TEST(ServiceChain, NonPositiveBandwidthThrows) {
  const ServiceChain chain({NetworkFunction::kNat});
  EXPECT_THROW(chain.compute_demand_mhz(0.0), std::invalid_argument);
  EXPECT_THROW(chain.compute_demand_mhz(-5.0), std::invalid_argument);
}

TEST(ServiceChain, ToStringPaperStyle) {
  const ServiceChain chain({NetworkFunction::kNat, NetworkFunction::kFirewall,
                            NetworkFunction::kIds});
  EXPECT_EQ(chain.to_string(), "<NAT, Firewall, IDS>");
}

TEST(ServiceChain, EqualityComparable) {
  const ServiceChain a({NetworkFunction::kNat});
  const ServiceChain b({NetworkFunction::kNat});
  const ServiceChain c({NetworkFunction::kIds});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RandomServiceChain, LengthWithinBounds) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const ServiceChain chain = random_service_chain(rng, 1, 3);
    EXPECT_GE(chain.length(), 1u);
    EXPECT_LE(chain.length(), 3u);
  }
}

TEST(RandomServiceChain, FunctionsDistinctAndCanonicalOrder) {
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const ServiceChain chain = random_service_chain(rng, 2, 5);
    std::set<NetworkFunction> distinct(chain.functions().begin(),
                                       chain.functions().end());
    EXPECT_EQ(distinct.size(), chain.length());
    EXPECT_TRUE(std::is_sorted(chain.functions().begin(), chain.functions().end(),
                               [](NetworkFunction a, NetworkFunction b) {
                                 return static_cast<int>(a) < static_cast<int>(b);
                               }));
  }
}

TEST(RandomServiceChain, FullLengthChainUsesAllFive) {
  util::Rng rng(3);
  const ServiceChain chain = random_service_chain(rng, 5, 5);
  EXPECT_EQ(chain.length(), 5u);
}

TEST(RandomServiceChain, BadBoundsThrow) {
  util::Rng rng(4);
  EXPECT_THROW(random_service_chain(rng, 0, 3), std::invalid_argument);
  EXPECT_THROW(random_service_chain(rng, 3, 2), std::invalid_argument);
  EXPECT_THROW(random_service_chain(rng, 1, 6), std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::nfv
