#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/online_cp.h"
#include "core/online_sp.h"
#include "sim/request_gen.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::sim {
namespace {

topo::Topology make_topo(std::uint64_t seed, std::size_t n = 40) {
  util::Rng rng(seed);
  return topo::make_waxman(n, rng);
}

TEST(Simulator, CountsAddUp) {
  const topo::Topology t = make_topo(1);
  util::Rng rng(2);
  RequestGenerator gen(t, rng);
  const auto requests = gen.sequence(40);
  core::OnlineCp algo(t);
  const SimulationMetrics m = run_online(algo, requests);
  EXPECT_EQ(m.num_requests, 40u);
  EXPECT_EQ(m.num_admitted + m.num_rejected, 40u);
  EXPECT_EQ(m.decisions.size(), 40u);
  EXPECT_EQ(m.cumulative_admitted.size(), 40u);
  EXPECT_EQ(m.num_admitted, algo.num_admitted());
}

TEST(Simulator, CumulativeSeriesIsMonotone) {
  const topo::Topology t = make_topo(3);
  util::Rng rng(4);
  RequestGenerator gen(t, rng);
  core::OnlineSp algo(t);
  const SimulationMetrics m = run_online(algo, gen.sequence(60));
  std::size_t last = 0;
  for (std::size_t i = 0; i < m.cumulative_admitted.size(); ++i) {
    EXPECT_GE(m.cumulative_admitted[i], last);
    EXPECT_LE(m.cumulative_admitted[i] - last, 1u);
    last = m.cumulative_admitted[i];
  }
  EXPECT_EQ(last, m.num_admitted);
}

TEST(Simulator, DecisionsMatchCumulative) {
  const topo::Topology t = make_topo(5);
  util::Rng rng(6);
  RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  const SimulationMetrics m = run_online(algo, gen.sequence(50));
  std::size_t acc = 0;
  for (std::size_t i = 0; i < m.decisions.size(); ++i) {
    acc += m.decisions[i] ? 1 : 0;
    EXPECT_EQ(m.cumulative_admitted[i], acc);
  }
}

TEST(Simulator, AcceptanceRatio) {
  const topo::Topology t = make_topo(7);
  util::Rng rng(8);
  RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  const SimulationMetrics m = run_online(algo, gen.sequence(30));
  EXPECT_NEAR(m.acceptance_ratio(),
              static_cast<double>(m.num_admitted) / 30.0, 1e-12);
  const SimulationMetrics empty;
  EXPECT_DOUBLE_EQ(empty.acceptance_ratio(), 0.0);
}

TEST(Simulator, AdmittedCostsRecorded) {
  const topo::Topology t = make_topo(9);
  util::Rng rng(10);
  RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  const SimulationMetrics m = run_online(algo, gen.sequence(30));
  EXPECT_EQ(m.admitted_costs.count(), m.num_admitted);
  EXPECT_EQ(m.decision_seconds.count(), 30u);
}

TEST(Simulator, UtilizationsWithinUnitInterval) {
  const topo::Topology t = make_topo(11);
  util::Rng rng(12);
  RequestGenerator gen(t, rng);
  core::OnlineSp algo(t);
  const SimulationMetrics m = run_online(algo, gen.sequence(80));
  EXPECT_GE(m.final_bandwidth_utilization, 0.0);
  EXPECT_LE(m.final_bandwidth_utilization, 1.0);
  EXPECT_GE(m.final_compute_utilization, 0.0);
  EXPECT_LE(m.final_compute_utilization, 1.0);
  EXPECT_GT(m.final_bandwidth_utilization, 0.0);  // something was admitted
}

TEST(Simulator, EmptySequence) {
  const topo::Topology t = make_topo(13);
  core::OnlineCp algo(t);
  const SimulationMetrics m = run_online(algo, std::vector<nfv::Request>{});
  EXPECT_EQ(m.num_requests, 0u);
  EXPECT_EQ(m.num_admitted, 0u);
  EXPECT_DOUBLE_EQ(m.final_bandwidth_utilization, 0.0);
}

TEST(Simulator, ValidatesTreesByDefault) {
  // The default options validate each admitted tree; this runs cleanly on
  // correct algorithms (a corrupted tree would throw, covered by the
  // validator's own tests).
  const topo::Topology t = make_topo(14);
  util::Rng rng(15);
  RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  EXPECT_NO_THROW(run_online(algo, gen.sequence(20)));
}

TEST(Simulator, RejectionBreakdownSumsToRejected) {
  // A tiny overloaded topology guarantees rejections; every one must land
  // in exactly one RejectCause bucket.
  const topo::Topology t = make_topo(18, 20);
  util::Rng rng(19);
  RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  const SimulationMetrics m = run_online(algo, gen.sequence(200));
  std::size_t total = 0;
  for (const std::size_t n : m.rejects_by_cause) total += n;
  EXPECT_EQ(total, m.num_rejected);
  EXPECT_GT(m.num_rejected, 0u);
  // Admission-path rejections always carry a concrete cause.
  EXPECT_EQ(m.rejected_because(core::RejectCause::kNone), 0u);
}

TEST(Simulator, EventLogRecordsEveryRequest) {
  const topo::Topology t = make_topo(20);
  util::Rng rng(21);
  RequestGenerator gen(t, rng);
  core::OnlineCp algo(t);
  const std::string path = ::testing::TempDir() + "/nfvm_sim_events.jsonl";
  obs::EventLog events;
  ASSERT_TRUE(events.open(path));
  SimulatorOptions opts;
  opts.event_log = &events;
  const SimulationMetrics m = run_online(algo, gen.sequence(25), opts);
  events.close();
  EXPECT_EQ(m.num_requests, 25u);
  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 25u);
  std::remove(path.c_str());
}

TEST(Simulator, SameSeedSameOutcome) {
  const topo::Topology t = make_topo(16);
  auto run = [&t]() {
    util::Rng rng(17);
    RequestGenerator gen(t, rng);
    core::OnlineCp algo(t);
    return run_online(algo, gen.sequence(40));
  };
  const SimulationMetrics a = run();
  const SimulationMetrics b = run();
  EXPECT_EQ(a.num_admitted, b.num_admitted);
  EXPECT_EQ(a.decisions, b.decisions);
}

}  // namespace
}  // namespace nfvm::sim
