// Soak-harness unit tests: bookkeeping invariants, argument validation, and
// run-to-run determinism (the property the CI obs-smoke byte-diff relies on).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/online_cp.h"
#include "sim/soak.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::sim {
namespace {

topo::Topology make_topo(std::uint64_t seed, std::size_t n = 40) {
  util::Rng rng(seed);
  return topo::make_waxman(n, rng);
}

SoakOptions small_soak() {
  SoakOptions options;
  options.num_requests = 300;
  options.arrival_rate = 10.0;
  options.mean_duration = 20.0;
  return options;
}

SoakMetrics run(const topo::Topology& t, const SoakOptions& options,
                std::uint64_t seed) {
  core::OnlineCp algo(t);
  util::Rng gen_rng(seed);
  util::Rng arrival_rng(seed + 1);
  RequestGenerator gen(t, gen_rng);
  return run_soak(algo, gen, arrival_rng, options);
}

TEST(Soak, CountsAddUp) {
  const topo::Topology t = make_topo(21);
  const SoakMetrics m = run(t, small_soak(), 5);
  EXPECT_EQ(m.num_requests, 300u);
  EXPECT_EQ(m.num_admitted + m.num_rejected, 300u);
  std::size_t by_cause = 0;
  for (const std::size_t c : m.rejects_by_cause) by_cause += c;
  EXPECT_EQ(by_cause, m.num_rejected);
  EXPECT_EQ(m.decision_us.count(), 300u);
  EXPECT_LE(m.mean_active, static_cast<double>(m.peak_active));
  EXPECT_GT(m.sim_duration, 0.0);
  EXPECT_GT(m.requests_per_s, 0.0);
  // Whole-run quantiles are ordered and bracketed by the exact extremes.
  EXPECT_LE(m.p50_us, m.p90_us);
  EXPECT_LE(m.p90_us, m.p99_us);
  EXPECT_GE(m.p99_us * 1.02, m.p50_us);  // sanity: same histogram
}

TEST(Soak, ResourcesFullyReleasedAtEnd) {
  const topo::Topology t = make_topo(23);
  core::OnlineCp algo(t);
  util::Rng gen_rng(7);
  util::Rng arrival_rng(8);
  RequestGenerator gen(t, gen_rng);
  run_soak(algo, gen, arrival_rng, small_soak());
  EXPECT_NEAR(algo.resources().total_allocated_bandwidth(), 0.0, 1e-6);
  EXPECT_NEAR(algo.resources().total_allocated_compute(), 0.0, 1e-6);
}

TEST(Soak, SameSeedsSameOutcome) {
  const topo::Topology t = make_topo(25);
  const SoakMetrics a = run(t, small_soak(), 9);
  const SoakMetrics b = run(t, small_soak(), 9);
  EXPECT_EQ(a.num_admitted, b.num_admitted);
  EXPECT_EQ(a.rejects_by_cause, b.rejects_by_cause);
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.peak_active, b.peak_active);
}

TEST(Soak, DiurnalModulationStillCountsEveryArrival) {
  const topo::Topology t = make_topo(27);
  SoakOptions options = small_soak();
  options.diurnal_amplitude = 0.8;
  options.diurnal_period = 10.0;
  const SoakMetrics m = run(t, options, 11);
  EXPECT_EQ(m.num_requests, 300u);
  EXPECT_EQ(m.num_admitted + m.num_rejected, 300u);
}

TEST(Soak, ProgressCallbackFires) {
  const topo::Topology t = make_topo(29);
  SoakOptions options = small_soak();
  options.num_requests = 100;
  options.progress_every = 25;
  std::vector<std::size_t> ticks;
  options.on_progress = [&ticks](std::size_t n) { ticks.push_back(n); };
  run(t, options, 13);
  ASSERT_FALSE(ticks.empty());
  EXPECT_EQ(ticks.back(), 100u);
  for (std::size_t i = 1; i < ticks.size(); ++i) EXPECT_GT(ticks[i], ticks[i - 1]);
}

TEST(Soak, RejectsBadOptions) {
  const topo::Topology t = make_topo(31);
  SoakOptions options = small_soak();
  options.arrival_rate = 0.0;
  EXPECT_THROW(run(t, options, 15), std::invalid_argument);
  options = small_soak();
  options.mean_duration = -1.0;
  EXPECT_THROW(run(t, options, 15), std::invalid_argument);
  options = small_soak();
  options.diurnal_amplitude = 1.0;  // must be < 1
  EXPECT_THROW(run(t, options, 15), std::invalid_argument);
  options = small_soak();
  options.diurnal_amplitude = -0.1;
  EXPECT_THROW(run(t, options, 15), std::invalid_argument);
  options = small_soak();
  options.diurnal_amplitude = 0.5;
  options.diurnal_period = 0.0;  // only checked when the modulation is on
  EXPECT_THROW(run(t, options, 15), std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::sim
