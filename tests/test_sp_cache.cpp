// SpCache: hit/miss behavior, (uid, epoch) invalidation, LRU eviction, and
// the try_get/put protocol used by parallel tree priming.
#include "graph/sp_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "graph/dijkstra.h"
#include "obs/metrics.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

std::uint64_t counter_value(const std::string& name) {
  return obs::Registry::global().counter(name)->value();
}

TEST(SpCache, SecondQueryReturnsSameTree) {
  util::Rng rng(21);
  const topo::Topology topo = topo::make_waxman(30, rng);
  SpCache cache;
  const auto first = cache.paths_from(topo.graph, 4);
  const auto second = cache.paths_from(topo.graph, 4);
  EXPECT_EQ(first.get(), second.get());  // a hit shares the stored tree
  EXPECT_EQ(cache.size(), 1u);

  const ShortestPaths fresh = dijkstra(topo.graph, 4);
  for (VertexId v = 0; v < topo.graph.num_vertices(); ++v) {
    EXPECT_EQ(first->dist[v], fresh.dist[v]);
  }
}

TEST(SpCache, CountsHitsAndMisses) {
  obs::Registry::global().reset_values();
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  SpCache cache;
  cache.paths_from(g, 0);  // miss
  cache.paths_from(g, 0);  // hit
  cache.paths_from(g, 1);  // miss
  cache.paths_from(g, 0);  // hit
#if NFVM_OBS
  EXPECT_EQ(counter_value("graph.spcache.misses"), 2u);
  EXPECT_EQ(counter_value("graph.spcache.hits"), 2u);
#else
  EXPECT_EQ(counter_value("graph.spcache.misses"), 0u);
#endif
}

TEST(SpCache, SetWeightInvalidates) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId bridge = g.add_edge(1, 2, 1.0);
  SpCache cache;
  const auto before = cache.paths_from(g, 0);
  EXPECT_DOUBLE_EQ(before->dist[2], 2.0);

  g.set_weight(bridge, 10.0);  // epoch bump
  const auto after = cache.paths_from(g, 0);
  EXPECT_NE(before.get(), after.get());
  EXPECT_DOUBLE_EQ(after->dist[2], 11.0);
  // The caller's old pointer still reads the pre-mutation tree.
  EXPECT_DOUBLE_EQ(before->dist[2], 2.0);
  EXPECT_EQ(cache.size(), 1u);  // stale entries were flushed, not kept
}

TEST(SpCache, GraphCopyHasDistinctIdentity) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  SpCache cache;
  cache.paths_from(g, 0);
  cache.paths_from(g, 1);
  EXPECT_EQ(cache.size(), 2u);

  const Graph copy = g;  // fresh uid: same structure, different identity
  cache.paths_from(copy, 0);
  EXPECT_EQ(cache.size(), 1u);  // rebinding flushed the old graph's trees
}

TEST(SpCache, EvictsLeastRecentlyUsed) {
  util::Rng rng(22);
  const topo::Topology topo = topo::make_waxman(20, rng);
  SpCache cache(/*capacity=*/2);
  const auto tree0 = cache.paths_from(topo.graph, 0);
  cache.paths_from(topo.graph, 1);
  cache.paths_from(topo.graph, 0);  // touch 0: source 1 is now the LRU
  cache.paths_from(topo.graph, 2);  // evicts source 1
  EXPECT_EQ(cache.size(), 2u);

  obs::Registry::global().reset_values();
  EXPECT_EQ(cache.paths_from(topo.graph, 0).get(), tree0.get());  // survived
  cache.paths_from(topo.graph, 1);  // was evicted: recomputed
#if NFVM_OBS
  EXPECT_EQ(counter_value("graph.spcache.hits"), 1u);
  EXPECT_EQ(counter_value("graph.spcache.misses"), 1u);
#endif
}

TEST(SpCache, EvictedTreeStaysUsable) {
  Graph g(2);
  g.add_edge(0, 1, 3.0);
  SpCache cache(/*capacity=*/1);
  const auto tree = cache.paths_from(g, 0);
  cache.paths_from(g, 1);  // evicts source 0's entry
  EXPECT_DOUBLE_EQ(tree->dist[1], 3.0);  // shared_ptr keeps it alive
}

TEST(SpCache, TryGetAndPutRoundTrip) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  SpCache cache;
  EXPECT_EQ(cache.try_get(g, 0), nullptr);

  auto tree = std::make_shared<const ShortestPaths>(dijkstra(g, 0));
  cache.put(g, 0, tree);
  EXPECT_EQ(cache.try_get(g, 0).get(), tree.get());
  EXPECT_EQ(cache.paths_from(g, 0).get(), tree.get());

  g.add_edge(1, 2, 1.0);  // epoch bump: the entry is stale
  EXPECT_EQ(cache.try_get(g, 0), nullptr);
}

TEST(SpCache, RebindKeepSurvivesEpochBumpForKeptEntries) {
  obs::Registry::global().reset_values();
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const EdgeId tail = g.add_edge(2, 3, 1.0);
  SpCache cache;
  const auto from0 = cache.paths_from(g, 0);
  const auto from1 = cache.paths_from(g, 1);
  const auto from2 = cache.paths_from(g, 2);
  ASSERT_EQ(cache.size(), 3u);

  g.set_weight(tail, 5.0);  // epoch bump: a plain lookup would flush all
  cache.rebind_keep(g, [](VertexId source, const ShortestPaths&) {
    return source == 1;  // caller's proof: only source 1 is still valid
  });
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.try_get(g, 1).get(), from1.get());  // kept under the new key
  EXPECT_EQ(cache.try_get(g, 0), nullptr);
  EXPECT_EQ(cache.try_get(g, 2), nullptr);
#if NFVM_OBS
  EXPECT_EQ(counter_value("graph.spcache.keyed_evictions"), 2u);
#endif
}

TEST(SpCache, RebindKeepPreservesLruOrder) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId e1 = g.add_edge(1, 2, 1.0);
  SpCache cache(/*capacity=*/2);
  const auto from0 = cache.paths_from(g, 0);
  cache.paths_from(g, 1);
  cache.paths_from(g, 0);  // touch 0: source 1 is now the LRU

  g.set_weight(e1, 2.0);
  cache.rebind_keep(g, [](VertexId, const ShortestPaths&) { return true; });
  EXPECT_EQ(cache.size(), 2u);
  cache.paths_from(g, 2);  // over capacity: evicts the LRU (source 1)
  EXPECT_EQ(cache.try_get(g, 0).get(), from0.get());
  EXPECT_EQ(cache.try_get(g, 1), nullptr);
}

TEST(SpCache, UnboundedWhenCapacityZero) {
  util::Rng rng(23);
  const topo::Topology topo = topo::make_waxman(25, rng);
  SpCache cache(/*capacity=*/0);
  for (VertexId s = 0; s < topo.graph.num_vertices(); ++s) {
    cache.paths_from(topo.graph, s);
  }
  EXPECT_EQ(cache.size(), topo.graph.num_vertices());
}

}  // namespace
}  // namespace nfvm::graph
