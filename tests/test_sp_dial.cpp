// Dial bucket-queue determinism suite: the bucket-ring specialization must
// be bit-identical to the binary-heap path (dist, parent AND parent_edge),
// the CSR weight inspection must only ever select it on strictly-positive
// integer weights <= kMaxDialWeight, and the batched multi-source SSSP must
// reproduce the sequential per-source loop byte-for-byte at any thread
// count. See the determinism argument in src/graph/sp_engine.cpp above
// run_dial and docs/performance.md "SP engine internals".
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/sp_engine.h"
#include "topology/waxman.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfvm::graph {
namespace {

void expect_trees_equal(const ShortestPaths& a, const ShortestPaths& b) {
  ASSERT_EQ(a.dist.size(), b.dist.size());
  EXPECT_EQ(a.source, b.source);
  for (VertexId v = 0; v < a.dist.size(); ++v) {
    EXPECT_EQ(a.dist[v], b.dist[v]) << "dist mismatch at " << v;
    EXPECT_EQ(a.parent[v], b.parent[v]) << "parent mismatch at " << v;
    EXPECT_EQ(a.parent_edge[v], b.parent_edge[v]) << "edge mismatch at " << v;
  }
}

/// The historical binary-heap Dijkstra — the order the Dial ring must
/// reproduce exactly.
ShortestPaths reference_dijkstra(const Graph& g, VertexId source) {
  ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(g.num_vertices(), kInfiniteDistance);
  sp.parent.assign(g.num_vertices(), kInvalidVertex);
  sp.parent_edge.assign(g.num_vertices(), kInvalidEdge);
  sp.dist[source] = 0.0;
  std::vector<std::pair<double, VertexId>> frontier{{0.0, source}};
  const auto cmp = [](const auto& a, const auto& b) { return a > b; };
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), cmp);
    const auto [d, u] = frontier.back();
    frontier.pop_back();
    if (d > sp.dist[u]) continue;
    for (const Adjacency& adj : g.neighbors(u)) {
      const double nd = d + g.edge(adj.edge).weight;
      if (nd < sp.dist[adj.neighbor]) {
        sp.dist[adj.neighbor] = nd;
        sp.parent[adj.neighbor] = u;
        sp.parent_edge[adj.neighbor] = adj.edge;
        frontier.emplace_back(nd, adj.neighbor);
        std::push_heap(frontier.begin(), frontier.end(), cmp);
      }
    }
  }
  return sp;
}

/// A Waxman topology re-weighted through `weight_of(e)` — same structure,
/// controlled weight profile.
Graph reweighted_waxman(std::size_t n, std::uint64_t seed,
                        double (*weight_of)(EdgeId)) {
  util::Rng rng(seed);
  const topo::Topology topo = topo::make_waxman(n, rng);
  Graph g(topo.graph.num_vertices());
  for (EdgeId e = 0; e < topo.graph.num_edges(); ++e) {
    const Edge& ed = topo.graph.edge(e);
    g.add_edge(ed.u, ed.v, weight_of(e));
  }
  return g;
}

TEST(SpDial, MatchesHeapOnRandomUnitWeightGraphs) {
  for (std::uint64_t seed : {7u, 11u, 23u}) {
    const Graph g =
        reweighted_waxman(50, seed, +[](EdgeId) { return 1.0; });
    SpEngine engine;
    for (VertexId s = 0; s < g.num_vertices(); s += 7) {
      const ShortestPaths sp = engine.shortest_paths(g, s);
      EXPECT_TRUE(engine.last_used_dial()) << "unit weights must select Dial";
      expect_trees_equal(sp, reference_dijkstra(g, s));
    }
  }
}

TEST(SpDial, MatchesHeapOnSmallIntegerWeights) {
  const Graph g = reweighted_waxman(
      60, 42, +[](EdgeId e) { return 1.0 + static_cast<double>(e % 9); });
  SpEngine engine;
  for (VertexId s = 0; s < g.num_vertices(); s += 5) {
    const ShortestPaths sp = engine.shortest_paths(g, s);
    EXPECT_TRUE(engine.last_used_dial());
    expect_trees_equal(sp, reference_dijkstra(g, s));
  }
}

TEST(SpDial, MixedWeightsSelectHeapWithEqualResults) {
  // One fractional weight anywhere disqualifies the whole graph.
  const Graph g = reweighted_waxman(
      60, 42, +[](EdgeId e) { return e == 3 ? 1.5 : 2.0; });
  SpEngine engine;
  for (VertexId s = 0; s < g.num_vertices(); s += 5) {
    const ShortestPaths sp = engine.shortest_paths(g, s);
    EXPECT_FALSE(engine.last_used_dial())
        << "non-integer weights must fall back to the heap";
    expect_trees_equal(sp, reference_dijkstra(g, s));
  }
}

TEST(SpDial, ZeroWeightEdgeSelectsHeap) {
  // Zero-weight edges would relax into the bucket currently being drained;
  // eligibility requires strictly positive weights.
  const Graph g = reweighted_waxman(
      30, 9, +[](EdgeId e) { return e == 0 ? 0.0 : 1.0; });
  SpEngine engine;
  const ShortestPaths sp = engine.shortest_paths(g, 0);
  EXPECT_FALSE(engine.last_used_dial());
  expect_trees_equal(sp, reference_dijkstra(g, 0));
}

TEST(SpDial, OversizedIntegerWeightSelectsHeap) {
  const Graph g = reweighted_waxman(
      30, 9, +[](EdgeId e) { return e == 0 ? kMaxDialWeight + 1.0 : 1.0; });
  SpEngine engine;
  const ShortestPaths sp = engine.shortest_paths(g, 0);
  EXPECT_FALSE(engine.last_used_dial());
  expect_trees_equal(sp, reference_dijkstra(g, 0));
}

TEST(SpDial, EarlyExitLeavesNoStaleBucketState) {
  // A point-to-point query abandons ring entries mid-drain; the next full
  // query must not see them (generation-stamped buckets).
  const Graph g = reweighted_waxman(50, 7, +[](EdgeId) { return 1.0; });
  SpEngine engine;
  engine.shortest_distance(g, 0, g.num_vertices() - 1);
  ASSERT_TRUE(engine.last_used_dial());
  for (VertexId s = 0; s < g.num_vertices(); s += 11) {
    expect_trees_equal(engine.shortest_paths(g, s), reference_dijkstra(g, s));
  }
}

class SpBatch : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { util::ThreadPool::set_global_threads(1); }
};

TEST_P(SpBatch, BatchedSsspMatchesSequentialLoop) {
  util::ThreadPool::set_global_threads(GetParam());
  for (std::uint64_t seed : {5u, 19u}) {
    util::Rng rng(seed);
    const topo::Topology topo = topo::make_waxman(80, rng);
    const Graph& g = topo.graph;
    std::vector<VertexId> sources;
    for (VertexId v = 0; v < g.num_vertices(); v += 3) sources.push_back(v);

    const std::vector<ShortestPaths> batch = batch_dijkstra(g, sources);
    ASSERT_EQ(batch.size(), sources.size());
    SpEngine engine;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      expect_trees_equal(batch[i], engine.shortest_paths(g, sources[i]));
    }
  }
}

TEST_P(SpBatch, MaskedBatchMatchesSequentialMaskedLoop) {
  util::ThreadPool::set_global_threads(GetParam());
  util::Rng rng(31);
  const topo::Topology topo = topo::make_waxman(80, rng);
  const Graph& g = topo.graph;
  std::vector<std::uint8_t> mask(g.num_edges(), 1);
  for (EdgeId e = 0; e < g.num_edges(); e += 3) mask[e] = 0;
  std::vector<VertexId> sources;
  for (VertexId v = 0; v < g.num_vertices(); v += 4) sources.push_back(v);

  const std::vector<ShortestPaths> batch = batch_dijkstra(g, sources, mask);
  ASSERT_EQ(batch.size(), sources.size());
  SpEngine engine;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    expect_trees_equal(batch[i],
                       engine.shortest_paths_masked(g, sources[i], mask));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpBatch, ::testing::Values(1u, 4u));

}  // namespace
}  // namespace nfvm::graph
