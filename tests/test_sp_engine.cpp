// SpEngine: equivalence with the dijkstra() free functions, early-exit
// point-to-point queries, target-set rows, and CsrView staleness tracking.
#include "graph/sp_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

void expect_trees_equal(const ShortestPaths& a, const ShortestPaths& b) {
  ASSERT_EQ(a.dist.size(), b.dist.size());
  EXPECT_EQ(a.source, b.source);
  for (VertexId v = 0; v < a.dist.size(); ++v) {
    EXPECT_EQ(a.dist[v], b.dist[v]) << "dist mismatch at " << v;
    EXPECT_EQ(a.parent[v], b.parent[v]) << "parent mismatch at " << v;
    EXPECT_EQ(a.parent_edge[v], b.parent_edge[v]) << "edge mismatch at " << v;
  }
}

/// Reference implementation for the equivalence tests: the historical
/// binary-heap Dijkstra over the adjacency lists.
ShortestPaths reference_dijkstra(const Graph& g, VertexId source) {
  ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(g.num_vertices(), kInfiniteDistance);
  sp.parent.assign(g.num_vertices(), kInvalidVertex);
  sp.parent_edge.assign(g.num_vertices(), kInvalidEdge);
  sp.dist[source] = 0.0;
  std::vector<std::pair<double, VertexId>> frontier{{0.0, source}};
  const auto cmp = [](const auto& a, const auto& b) { return a > b; };
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), cmp);
    const auto [d, u] = frontier.back();
    frontier.pop_back();
    if (d > sp.dist[u]) continue;
    for (const Adjacency& adj : g.neighbors(u)) {
      const double nd = d + g.edge(adj.edge).weight;
      if (nd < sp.dist[adj.neighbor]) {
        sp.dist[adj.neighbor] = nd;
        sp.parent[adj.neighbor] = u;
        sp.parent_edge[adj.neighbor] = adj.edge;
        frontier.emplace_back(nd, adj.neighbor);
        std::push_heap(frontier.begin(), frontier.end(), cmp);
      }
    }
  }
  return sp;
}

TEST(SpEngine, MatchesReferenceOnRandomGraph) {
  util::Rng rng(77);
  const topo::Topology topo = topo::make_waxman(60, rng);
  SpEngine engine;
  for (VertexId s = 0; s < topo.graph.num_vertices(); ++s) {
    expect_trees_equal(engine.shortest_paths(topo.graph, s),
                       reference_dijkstra(topo.graph, s));
  }
}

TEST(SpEngine, FreeFunctionsUseEngineAndStayEquivalent) {
  util::Rng rng(78);
  const topo::Topology topo = topo::make_waxman(50, rng);
  for (VertexId s : {VertexId{0}, VertexId{13}, VertexId{42}}) {
    expect_trees_equal(dijkstra(topo.graph, s),
                       reference_dijkstra(topo.graph, s));
  }
}

TEST(SpEngine, WorkspaceSurvivesGraphSwitches) {
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  const topo::Topology a = topo::make_waxman(40, rng_a);
  const topo::Topology b = topo::make_waxman(25, rng_b);
  SpEngine engine;
  // Interleave queries across two graphs of different sizes; the lazily
  // reset workspace must never leak state between them.
  expect_trees_equal(engine.shortest_paths(a.graph, 0), reference_dijkstra(a.graph, 0));
  expect_trees_equal(engine.shortest_paths(b.graph, 5), reference_dijkstra(b.graph, 5));
  expect_trees_equal(engine.shortest_paths(a.graph, 7), reference_dijkstra(a.graph, 7));
}

TEST(SpEngine, SeesWeightUpdates) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId bridge = g.add_edge(1, 2, 1.0);
  SpEngine engine;
  EXPECT_DOUBLE_EQ(engine.shortest_paths(g, 0).dist[2], 2.0);
  g.set_weight(bridge, 10.0);  // epoch bump => CSR view rebuilds
  EXPECT_DOUBLE_EQ(engine.shortest_paths(g, 0).dist[2], 11.0);
}

TEST(SpEngine, FilteredMatchesFreeFunction) {
  util::Rng rng(3);
  const topo::Topology topo = topo::make_waxman(40, rng);
  const auto allowed = [](EdgeId e) { return e % 3 != 0; };
  SpEngine engine;
  expect_trees_equal(engine.shortest_paths_filtered(topo.graph, 4, allowed),
                     dijkstra_filtered(topo.graph, 4, allowed));
}

TEST(SpEngine, EarlyExitDistanceEqualsFullRun) {
  util::Rng rng(9);
  const topo::Topology topo = topo::make_waxman(45, rng);
  SpEngine engine;
  for (VertexId from : {VertexId{0}, VertexId{11}, VertexId{30}}) {
    const ShortestPaths full = reference_dijkstra(topo.graph, from);
    for (VertexId to = 0; to < topo.graph.num_vertices(); ++to) {
      EXPECT_EQ(engine.shortest_distance(topo.graph, from, to), full.dist[to]);
    }
  }
}

TEST(SpEngine, EarlyExitHandlesDisconnectedPairs) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  SpEngine engine;
  EXPECT_EQ(engine.shortest_distance(g, 0, 3), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(engine.shortest_distance(g, 2, 3), 1.0);
}

TEST(SpEngine, ShortestDistanceValidatesEndpoints) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  SpEngine engine;
  EXPECT_THROW(engine.shortest_distance(g, 5, 1), std::out_of_range);
  EXPECT_THROW(engine.shortest_distance(g, 0, 5), std::out_of_range);
  // The free-function wrapper validates the same way (satellite fix: the
  // historical helper ignored a bad `from`).
  EXPECT_THROW(shortest_distance(g, 9, 0), std::out_of_range);
  EXPECT_THROW(shortest_distance(g, 0, 9), std::out_of_range);
}

TEST(SpEngine, DistancesToMatchesFullRunWithDuplicates) {
  util::Rng rng(12);
  const topo::Topology topo = topo::make_waxman(35, rng);
  const ShortestPaths full = reference_dijkstra(topo.graph, 6);
  const std::vector<VertexId> targets{3, 17, 3, 6, 30};
  SpEngine engine;
  const std::vector<double> d = engine.distances_to(topo.graph, 6, targets);
  ASSERT_EQ(d.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(d[i], full.dist[targets[i]]);
  }
}

TEST(SpEngine, DistancesToUnreachableTargets) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  SpEngine engine;
  const std::vector<VertexId> targets{1, 2, 3};
  const std::vector<double> d = engine.distances_to(g, 0, targets);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_EQ(d[1], kInfiniteDistance);
  EXPECT_EQ(d[2], kInfiniteDistance);
}

TEST(CsrView, MatchesAndRefreshTrackEpoch) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  CsrView view(g);
  EXPECT_TRUE(view.matches(g));
  EXPECT_FALSE(view.refresh(g));  // fresh view: no rebuild

  g.set_weight(0, 2.5);  // mutation bumps the epoch
  EXPECT_FALSE(view.matches(g));
  EXPECT_TRUE(view.refresh(g));
  EXPECT_TRUE(view.matches(g));
  ASSERT_EQ(view.out(0).size(), 1u);
  EXPECT_DOUBLE_EQ(view.out(0)[0].weight, 2.5);
}

TEST(CsrView, DistinguishesGraphCopies) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  CsrView view(g);
  const Graph copy = g;  // fresh uid, same structure
  EXPECT_TRUE(view.matches(g));
  EXPECT_FALSE(view.matches(copy));
}

TEST(CsrView, PreservesNeighborOrder) {
  Graph g(3);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 3.0);  // parallel edge
  const CsrView view(g);
  const auto out = view.out(0);
  const auto adj = g.neighbors(0);
  ASSERT_EQ(out.size(), adj.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].neighbor, adj[i].neighbor);
    EXPECT_EQ(out[i].edge, adj[i].edge);
    EXPECT_DOUBLE_EQ(out[i].weight, g.weight(adj[i].edge));
  }
}

}  // namespace
}  // namespace nfvm::graph
