#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace nfvm::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10, 10);
    whole.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleSet, QuantileInterpolation) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(SampleSet, SingleValueQuantiles) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::out_of_range);
  EXPECT_THROW(s.min(), std::out_of_range);
  EXPECT_THROW(s.max(), std::out_of_range);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, QuantileRangeChecked) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::out_of_range);
  EXPECT_THROW(s.quantile(1.1), std::out_of_range);
}

TEST(SampleSet, AddAfterQuantileKeepsConsistency) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // after a sorted read
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SampleSet, StddevOfSingleIsZero) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace nfvm::util
