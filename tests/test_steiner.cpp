#include "graph/steiner.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nfvm::graph {
namespace {

/// Classic KMB example shape: a star whose center is a Steiner point.
Graph star_with_ring() {
  // 0 = center; 1..4 = terminals on a ring of heavy edges, light spokes.
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(0, 4, 1.0);
  g.add_edge(1, 2, 1.9);
  g.add_edge(2, 3, 1.9);
  g.add_edge(3, 4, 1.9);
  g.add_edge(4, 1, 1.9);
  return g;
}

TEST(KmbSteiner, SingleTerminalTrivial) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const SteinerResult st = kmb_steiner(g, std::vector<VertexId>{1});
  EXPECT_TRUE(st.connected);
  EXPECT_TRUE(st.edges.empty());
  EXPECT_DOUBLE_EQ(st.weight, 0.0);
}

TEST(KmbSteiner, DuplicateTerminalsIgnored) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  const SteinerResult st = kmb_steiner(g, std::vector<VertexId>{0, 1, 0, 1});
  EXPECT_TRUE(st.connected);
  EXPECT_EQ(st.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(st.weight, 2.0);
}

TEST(KmbSteiner, TwoTerminalsIsShortestPath) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 10.0);
  const SteinerResult st = kmb_steiner(g, std::vector<VertexId>{0, 3});
  EXPECT_TRUE(st.connected);
  EXPECT_DOUBLE_EQ(st.weight, 3.0);
  EXPECT_EQ(st.edges.size(), 3u);
}

TEST(KmbSteiner, UsesSteinerPoint) {
  const Graph g = star_with_ring();
  const SteinerResult st = kmb_steiner(g, std::vector<VertexId>{1, 2, 3, 4});
  EXPECT_TRUE(st.connected);
  // Optimal is the star through center 0 (weight 4); KMB may return the
  // chain of ring edges (weight 5.7) but never more than 2x optimal.
  EXPECT_LE(st.weight, 2.0 * 4.0 + 1e-9);
  EXPECT_TRUE(is_steiner_tree(g, st.edges, std::vector<VertexId>{1, 2, 3, 4}));
}

TEST(KmbSteiner, DisconnectedTerminals) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const SteinerResult st = kmb_steiner(g, std::vector<VertexId>{0, 3});
  EXPECT_FALSE(st.connected);
  EXPECT_TRUE(st.edges.empty());
}

TEST(KmbSteiner, EmptyTerminalSetThrows) {
  Graph g(2);
  EXPECT_THROW(kmb_steiner(g, std::vector<VertexId>{}), std::invalid_argument);
}

TEST(KmbSteiner, InvalidTerminalThrows) {
  Graph g(2);
  EXPECT_THROW(kmb_steiner(g, std::vector<VertexId>{5}), std::out_of_range);
}

TEST(KmbSteiner, ResultHasNoNonTerminalLeaves) {
  const Graph g = star_with_ring();
  const std::vector<VertexId> terms{1, 3};
  const SteinerResult st = kmb_steiner(g, terms);
  // Count degrees in the result.
  std::vector<int> deg(g.num_vertices(), 0);
  for (EdgeId e : st.edges) {
    ++deg[g.edge(e).u];
    ++deg[g.edge(e).v];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (deg[v] == 1) {
      EXPECT_TRUE(std::find(terms.begin(), terms.end(), v) != terms.end())
          << "non-terminal leaf " << v;
    }
  }
}

TEST(ExactSteiner, MatchesShortestPathForTwoTerminals) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 2.5);
  const SteinerResult st = exact_steiner(g, std::vector<VertexId>{0, 3});
  EXPECT_TRUE(st.connected);
  EXPECT_DOUBLE_EQ(st.weight, 2.5);
}

TEST(ExactSteiner, FindsSteinerPoint) {
  const Graph g = star_with_ring();
  const SteinerResult st = exact_steiner(g, std::vector<VertexId>{1, 2, 3, 4});
  EXPECT_TRUE(st.connected);
  EXPECT_DOUBLE_EQ(st.weight, 4.0);  // star through the center
  EXPECT_EQ(st.edges.size(), 4u);
}

TEST(ExactSteiner, SingleTerminal) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const SteinerResult st = exact_steiner(g, std::vector<VertexId>{0});
  EXPECT_TRUE(st.connected);
  EXPECT_TRUE(st.edges.empty());
}

TEST(ExactSteiner, DisconnectedReturnsNotConnected) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  const SteinerResult st = exact_steiner(g, std::vector<VertexId>{0, 3});
  EXPECT_FALSE(st.connected);
}

TEST(ExactSteiner, TooManyTerminalsThrows) {
  Graph g(20);
  for (VertexId v = 0; v + 1 < 20; ++v) g.add_edge(v, v + 1, 1.0);
  std::vector<VertexId> terms;
  for (VertexId v = 0; v < 16; ++v) terms.push_back(v);
  EXPECT_THROW(exact_steiner(g, terms), std::invalid_argument);
}

TEST(ExactSteiner, ThreeTerminalMedianVertex) {
  // Path 0-1-2-3-4 plus terminal 5 hanging off 2: optimum joins at 2.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(2, 5, 1.0);
  const SteinerResult st = exact_steiner(g, std::vector<VertexId>{0, 4, 5});
  EXPECT_DOUBLE_EQ(st.weight, 5.0);
  EXPECT_EQ(st.edges.size(), 5u);
}

TEST(KmbFinish, PrunesAndMeasuresUnion) {
  const Graph g = star_with_ring();
  // Union: the full star plus one ring edge; terminals {1, 3}. The MST step
  // drops redundancy, pruning removes the leaves 2 and 4 with their spokes.
  std::vector<EdgeId> union_edges{0, 1, 2, 3, 4};
  const SteinerResult st =
      kmb_finish(g, union_edges, std::vector<VertexId>{1, 3});
  ASSERT_TRUE(st.connected);
  EXPECT_TRUE(is_steiner_tree(g, st.edges, std::vector<VertexId>{1, 3}));
  EXPECT_DOUBLE_EQ(st.weight, 2.0);  // 1-0-3 through the center
}

TEST(KmbFinish, ReportsDisconnectedUnion) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const SteinerResult st =
      kmb_finish(g, std::vector<EdgeId>{a}, std::vector<VertexId>{0, 3});
  EXPECT_FALSE(st.connected);
}

TEST(KmbFinish, SingleTerminalTrivial) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const SteinerResult st =
      kmb_finish(g, std::vector<EdgeId>{0}, std::vector<VertexId>{0});
  EXPECT_TRUE(st.connected);
  EXPECT_TRUE(st.edges.empty());
}

TEST(ExactSteiner, EightTerminalsAgainstKmbSandwich) {
  // exact <= kmb <= 2 exact with a larger terminal set.
  Graph g(12);
  // Grid-ish structure.
  for (VertexId v = 0; v + 1 < 12; ++v) g.add_edge(v, v + 1, 1.0);
  g.add_edge(0, 6, 2.5);
  g.add_edge(2, 8, 2.5);
  g.add_edge(4, 10, 2.5);
  const std::vector<VertexId> terms{0, 2, 4, 5, 7, 8, 10, 11};
  const SteinerResult exact = exact_steiner(g, terms);
  const SteinerResult kmb = kmb_steiner(g, terms);
  ASSERT_TRUE(exact.connected);
  ASSERT_TRUE(kmb.connected);
  EXPECT_LE(exact.weight, kmb.weight + 1e-9);
  EXPECT_LE(kmb.weight, 2.0 * exact.weight + 1e-9);
  EXPECT_TRUE(is_steiner_tree(g, exact.edges, terms));
}

TEST(IsSteinerTree, AcceptsValidTree) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_TRUE(is_steiner_tree(g, std::vector<EdgeId>{a, b},
                              std::vector<VertexId>{0, 2}));
}

TEST(IsSteinerTree, RejectsCycle) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(1, 2, 1.0);
  const EdgeId c = g.add_edge(2, 0, 1.0);
  EXPECT_FALSE(is_steiner_tree(g, std::vector<EdgeId>{a, b, c},
                               std::vector<VertexId>{0, 1, 2}));
}

TEST(IsSteinerTree, RejectsMissingTerminal) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(is_steiner_tree(g, std::vector<EdgeId>{a},
                               std::vector<VertexId>{0, 3}));
}

TEST(IsSteinerTree, RejectsDisconnectedForest) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(is_steiner_tree(g, std::vector<EdgeId>{a, b},
                               std::vector<VertexId>{0, 3}));
}

TEST(IsSteinerTree, SingleTerminalNeedsNoEdges) {
  Graph g(2);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(is_steiner_tree(g, std::vector<EdgeId>{}, std::vector<VertexId>{0}));
  EXPECT_FALSE(is_steiner_tree(g, std::vector<EdgeId>{a}, std::vector<VertexId>{0}));
}

}  // namespace
}  // namespace nfvm::graph
