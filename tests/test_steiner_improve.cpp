#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/steiner.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

/// Star whose center is a pure Steiner point with a slightly-worse ring:
/// plain KMB returns a ring chain (weight 5.7); the optimum is the star
/// through the center (weight 4.0).
Graph star_with_ring() {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(0, 4, 1.0);
  g.add_edge(1, 2, 1.9);
  g.add_edge(2, 3, 1.9);
  g.add_edge(3, 4, 1.9);
  g.add_edge(4, 1, 1.9);
  return g;
}

Graph random_connected_graph(util::Rng& rng, std::size_t n, double p) {
  for (;;) {
    Graph g(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) g.add_edge(u, v, rng.uniform_real(0.5, 10.0));
      }
    }
    if (is_connected(g)) return g;
  }
}

TEST(SteinerImprove, RecoversMissedSteinerPoint) {
  const Graph g = star_with_ring();
  const std::vector<VertexId> terminals{1, 2, 3, 4};
  const SteinerResult kmb = kmb_steiner(g, terminals);
  ASSERT_TRUE(kmb.connected);
  ASSERT_GT(kmb.weight, 4.0 + 1e-9);  // plain KMB misses the center
  const SteinerResult improved = improve_steiner(g, kmb, terminals);
  EXPECT_NEAR(improved.weight, 4.0, 1e-9);  // insertion of vertex 0 fixes it
  EXPECT_TRUE(is_steiner_tree(g, improved.edges, terminals));
}

TEST(SteinerImprove, NeverWorsens) {
  util::Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_graph(rng, 16, 0.3);
    std::vector<VertexId> terminals;
    for (std::size_t p : rng.sample_without_replacement(16, 5)) {
      terminals.push_back(static_cast<VertexId>(p));
    }
    const SteinerResult kmb = kmb_steiner(g, terminals);
    const SteinerResult improved = improve_steiner(g, kmb, terminals);
    EXPECT_LE(improved.weight, kmb.weight + 1e-9) << "trial " << trial;
    EXPECT_TRUE(is_steiner_tree(g, improved.edges, terminals));
    // Still bounded below by the optimum.
    const SteinerResult exact = exact_steiner(g, terminals);
    EXPECT_GE(improved.weight + 1e-9, exact.weight);
  }
}

TEST(SteinerImprove, IdempotentWhenNoVertexHelps) {
  const Graph g = star_with_ring();
  const std::vector<VertexId> terminals{1, 2, 3, 4};
  SteinerResult improved = improve_steiner(g, kmb_steiner(g, terminals), terminals);
  const double first = improved.weight;
  improved = improve_steiner(g, std::move(improved), terminals);
  EXPECT_DOUBLE_EQ(improved.weight, first);
}

TEST(SteinerImprove, SingleTerminalTrivial) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  SteinerResult base;
  base.connected = true;
  const SteinerResult improved =
      improve_steiner(g, base, std::vector<VertexId>{1});
  EXPECT_TRUE(improved.edges.empty());
}

TEST(SteinerImprove, DisconnectedInputRejected) {
  Graph g(2);
  SteinerResult bad;  // connected == false
  EXPECT_THROW(improve_steiner(g, bad, std::vector<VertexId>{0, 1}),
               std::invalid_argument);
}

TEST(SteinerImprove, ZeroRoundsIsIdentity) {
  const Graph g = star_with_ring();
  const std::vector<VertexId> terminals{1, 2, 3, 4};
  const SteinerResult kmb = kmb_steiner(g, terminals);
  const SteinerResult same = improve_steiner(g, kmb, terminals, 0);
  EXPECT_DOUBLE_EQ(same.weight, kmb.weight);
  EXPECT_EQ(same.edges, kmb.edges);
}

}  // namespace
}  // namespace nfvm::graph
