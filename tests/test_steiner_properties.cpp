// Property-based sweeps over random graphs checking the KMB guarantee
// against the exact Dreyfus-Wagner optimum.
#include <gtest/gtest.h>

#include <vector>

#include "graph/components.h"
#include "graph/steiner.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

struct RandomCase {
  std::uint64_t seed;
  std::size_t num_vertices;
  double edge_prob;
  std::size_t num_terminals;
};

Graph random_connected_graph(util::Rng& rng, std::size_t n, double p) {
  for (;;) {
    Graph g(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) g.add_edge(u, v, rng.uniform_real(0.5, 10.0));
      }
    }
    if (is_connected(g)) return g;
  }
}

class SteinerRatioTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(SteinerRatioTest, KmbWithinTwiceOptimal) {
  const RandomCase& c = GetParam();
  util::Rng rng(c.seed);
  const Graph g = random_connected_graph(rng, c.num_vertices, c.edge_prob);
  std::vector<VertexId> terminals;
  for (std::size_t p : rng.sample_without_replacement(c.num_vertices, c.num_terminals)) {
    terminals.push_back(static_cast<VertexId>(p));
  }

  const SteinerResult approx = kmb_steiner(g, terminals);
  const SteinerResult exact = exact_steiner(g, terminals);
  ASSERT_TRUE(approx.connected);
  ASSERT_TRUE(exact.connected);

  EXPECT_TRUE(is_steiner_tree(g, approx.edges, terminals));
  EXPECT_TRUE(is_steiner_tree(g, exact.edges, terminals));

  // Exact is a lower bound for any Steiner tree.
  EXPECT_LE(exact.weight, approx.weight + 1e-9);
  // KMB guarantee: 2 (1 - 1/t) OPT <= 2 OPT.
  const double t = static_cast<double>(c.num_terminals);
  EXPECT_LE(approx.weight, 2.0 * (1.0 - 1.0 / t) * exact.weight + 1e-9)
      << "KMB ratio violated";
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SteinerRatioTest,
    ::testing::Values(
        RandomCase{101, 8, 0.4, 3}, RandomCase{102, 8, 0.5, 4},
        RandomCase{103, 10, 0.35, 3}, RandomCase{104, 10, 0.4, 5},
        RandomCase{105, 12, 0.3, 4}, RandomCase{106, 12, 0.35, 6},
        RandomCase{107, 14, 0.3, 5}, RandomCase{108, 14, 0.25, 4},
        RandomCase{109, 16, 0.25, 6}, RandomCase{110, 16, 0.3, 7},
        RandomCase{111, 18, 0.22, 5}, RandomCase{112, 18, 0.25, 6},
        RandomCase{113, 20, 0.2, 4}, RandomCase{114, 20, 0.22, 7},
        RandomCase{115, 22, 0.2, 5}, RandomCase{116, 24, 0.18, 6},
        RandomCase{117, 9, 0.5, 2}, RandomCase{118, 11, 0.4, 2},
        RandomCase{119, 15, 0.3, 8}, RandomCase{120, 13, 0.35, 3}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

class SteinerDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteinerDeterminismTest, KmbIsDeterministic) {
  util::Rng rng(GetParam());
  const Graph g = random_connected_graph(rng, 15, 0.3);
  std::vector<VertexId> terminals{0, 5, 9, 14};
  const SteinerResult a = kmb_steiner(g, terminals);
  const SteinerResult b = kmb_steiner(g, terminals);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_DOUBLE_EQ(a.weight, b.weight);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteinerDeterminismTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SteinerProperty, KmbWeightEqualsSumOfEdges) {
  util::Rng rng(321);
  const Graph g = random_connected_graph(rng, 20, 0.25);
  const std::vector<VertexId> terminals{1, 7, 13, 19};
  const SteinerResult st = kmb_steiner(g, terminals);
  double sum = 0.0;
  for (EdgeId e : st.edges) sum += g.weight(e);
  EXPECT_NEAR(sum, st.weight, 1e-9);
}

TEST(SteinerProperty, TerminalOrderIrrelevant) {
  util::Rng rng(654);
  const Graph g = random_connected_graph(rng, 16, 0.3);
  const SteinerResult a = kmb_steiner(g, std::vector<VertexId>{2, 6, 11, 15});
  const SteinerResult b = kmb_steiner(g, std::vector<VertexId>{15, 11, 6, 2});
  EXPECT_DOUBLE_EQ(a.weight, b.weight);
}

TEST(SteinerProperty, AddingTerminalsNeverCheapens) {
  util::Rng rng(987);
  const Graph g = random_connected_graph(rng, 14, 0.35);
  const SteinerResult small = exact_steiner(g, std::vector<VertexId>{0, 5});
  const SteinerResult large = exact_steiner(g, std::vector<VertexId>{0, 5, 9});
  EXPECT_GE(large.weight + 1e-9, small.weight);
}

}  // namespace
}  // namespace nfvm::graph
