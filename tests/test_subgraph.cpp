#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace nfvm::graph {
namespace {

Graph square() {
  Graph g(4);
  g.add_edge(0, 1, 1.0);  // e0
  g.add_edge(1, 2, 2.0);  // e1
  g.add_edge(2, 3, 3.0);  // e2
  g.add_edge(3, 0, 4.0);  // e3
  return g;
}

TEST(Subgraph, KeepAllIsIdentity) {
  const Graph g = square();
  const Subgraph sub = filter_edges(g, [](EdgeId) { return true; });
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(sub.original_edge[e], e);
    EXPECT_DOUBLE_EQ(sub.graph.weight(e), g.weight(e));
  }
}

TEST(Subgraph, DropAllKeepsVertices) {
  const Graph g = square();
  const Subgraph sub = filter_edges(g, [](EdgeId) { return false; });
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
  EXPECT_TRUE(sub.original_edge.empty());
}

TEST(Subgraph, MappingPointsBack) {
  const Graph g = square();
  const Subgraph sub = filter_edges(g, [](EdgeId e) { return e % 2 == 1; });
  ASSERT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.original_edge[0], 1u);
  EXPECT_EQ(sub.original_edge[1], 3u);
  EXPECT_DOUBLE_EQ(sub.graph.weight(0), 2.0);
  EXPECT_DOUBLE_EQ(sub.graph.weight(1), 4.0);
}

TEST(Subgraph, ToOriginalTranslatesLists) {
  const Graph g = square();
  const Subgraph sub = filter_edges(g, [](EdgeId e) { return e >= 2; });
  const auto orig = sub.to_original({0, 1});
  EXPECT_EQ(orig, (std::vector<EdgeId>{2, 3}));
}

TEST(Subgraph, EndpointsPreserved) {
  const Graph g = square();
  const Subgraph sub = filter_edges(g, [](EdgeId e) { return e == 2; });
  ASSERT_EQ(sub.graph.num_edges(), 1u);
  EXPECT_EQ(sub.graph.edge(0).u, 2u);
  EXPECT_EQ(sub.graph.edge(0).v, 3u);
}

}  // namespace
}  // namespace nfvm::graph
