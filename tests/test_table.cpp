#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace nfvm::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, AddBeforeBeginRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(Table, StoresCells) {
  Table t({"n", "cost"});
  t.begin_row().add(50).add(1.5, 2);
  t.begin_row().add(100).add(2.25, 2);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "50");
  EXPECT_EQ(t.cell(0, 1), "1.50");
  EXPECT_EQ(t.cell(1, 1), "2.25");
}

TEST(Table, CellOutOfRangeThrows) {
  Table t({"a"});
  t.begin_row().add(1);
  EXPECT_THROW(t.cell(1, 0), std::out_of_range);
  EXPECT_THROW(t.cell(0, 1), std::out_of_range);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.begin_row().add("x").add(1);
  t.begin_row().add("longer").add(22);
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("# name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header line starts with '#', data lines do not.
  EXPECT_EQ(out.rfind("#", 0), 0u);
}

TEST(Table, PrintRejectsRaggedRows) {
  Table t({"a", "b"});
  t.begin_row().add(1);  // missing second cell
  std::ostringstream oss;
  EXPECT_THROW(t.print(oss), std::logic_error);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Table, SizeTypeAndIntOverloads) {
  Table t({"a", "b", "c"});
  t.begin_row().add(std::size_t{7}).add(static_cast<long long>(-3)).add(int{4});
  EXPECT_EQ(t.cell(0, 0), "7");
  EXPECT_EQ(t.cell(0, 1), "-3");
  EXPECT_EQ(t.cell(0, 2), "4");
}

}  // namespace
}  // namespace nfvm::util
