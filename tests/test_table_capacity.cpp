// Forwarding-table (flow-entry) capacity extension: resource accounting and
// algorithm behaviour when switches run out of table space.
#include <gtest/gtest.h>

#include <cmath>

#include "core/appro_multi.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

topo::Topology path_topology(double table_entries = 0.0) {
  topo::Topology t;
  t.name = "table-path";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  t.servers = {2};
  t.link_bandwidth = {10000, 10000, 10000};
  t.server_compute = {0, 0, 80000, 0};
  if (table_entries > 0) topo::assign_table_capacities(t, table_entries);
  return t;
}

nfv::Request simple_request(std::uint64_t id = 1) {
  nfv::Request r;
  r.id = id;
  r.source = 0;
  r.destinations = {3};
  r.bandwidth_mbps = 100.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  return r;
}

TEST(TableCapacity, UntrackedStateReportsInfinity) {
  const topo::Topology t = path_topology();
  const nfv::ResourceState state(t);
  EXPECT_FALSE(state.tracks_tables());
  EXPECT_TRUE(std::isinf(state.residual_table_entries(0)));
  EXPECT_TRUE(std::isinf(state.table_capacity(0)));
}

TEST(TableCapacity, TrackedAccounting) {
  const topo::Topology t = path_topology(3.0);
  nfv::ResourceState state(t);
  ASSERT_TRUE(state.tracks_tables());
  EXPECT_DOUBLE_EQ(state.residual_table_entries(1), 3.0);

  nfv::Footprint fp;
  fp.table_entries = {0, 1, 2};
  ASSERT_TRUE(state.can_allocate(fp));
  state.allocate(fp);
  EXPECT_DOUBLE_EQ(state.residual_table_entries(1), 2.0);
  EXPECT_DOUBLE_EQ(state.residual_table_entries(3), 3.0);
  state.release(fp);
  EXPECT_DOUBLE_EQ(state.residual_table_entries(1), 3.0);
}

TEST(TableCapacity, DuplicateEntriesAggregate) {
  const topo::Topology t = path_topology(2.0);
  nfv::ResourceState state(t);
  nfv::Footprint fp;
  fp.table_entries = {1, 1, 1};  // 3 entries on one switch > capacity 2
  EXPECT_FALSE(state.can_allocate(fp));
  EXPECT_THROW(state.allocate(fp), std::runtime_error);
}

TEST(TableCapacity, OverReleaseRejected) {
  const topo::Topology t = path_topology(2.0);
  nfv::ResourceState state(t);
  nfv::Footprint fp;
  fp.table_entries = {1};
  EXPECT_THROW(state.release(fp), std::runtime_error);
}

TEST(TableCapacity, FootprintListsTouchedSwitches) {
  const topo::Topology t = path_topology(5.0);
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  const nfv::Request r = simple_request();
  const OfflineSolution sol = appro_multi(t, costs, r);
  ASSERT_TRUE(sol.admitted);
  const nfv::Footprint fp = sol.tree.footprint(r, t.graph);
  EXPECT_EQ(fp.table_entries, (std::vector<graph::VertexId>{0, 1, 2, 3}));
}

TEST(TableCapacity, OnlineCpStopsWhenTablesExhausted) {
  // Two flow entries per switch: exactly two multicast groups fit through
  // this path; bandwidth/compute are plentiful.
  const topo::Topology t = path_topology(2.0);
  OnlineCp algo(t);
  std::size_t admitted = 0;
  for (std::uint64_t k = 1; k <= 6; ++k) {
    if (algo.process(simple_request(k)).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 2u);
  EXPECT_DOUBLE_EQ(algo.resources().residual_table_entries(1), 0.0);
}

TEST(TableCapacity, OnlineSpStopsWhenTablesExhausted) {
  const topo::Topology t = path_topology(3.0);
  OnlineSp algo(t);
  std::size_t admitted = 0;
  for (std::uint64_t k = 1; k <= 8; ++k) {
    if (algo.process(simple_request(k)).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 3u);
}

TEST(TableCapacity, OfflineCapacitatedPrunesFullSwitches) {
  const topo::Topology t = path_topology(1.0);
  const LinearCosts costs = uniform_costs(t, 1.0, 0.001);
  nfv::ResourceState state(t);
  // First admission consumes the single entry everywhere on the path.
  ApproMultiOptions opts;
  opts.resources = &state;
  const OfflineSolution first = appro_multi(t, costs, simple_request(1), opts);
  ASSERT_TRUE(first.admitted);
  state.allocate(first.tree.footprint(simple_request(1), t.graph));

  const OfflineSolution second = appro_multi(t, costs, simple_request(2), opts);
  EXPECT_FALSE(second.admitted);
}

TEST(TableCapacity, ValidateTopologyChecksTables) {
  topo::Topology t = path_topology(4.0);
  util::Rng rng(1);
  EXPECT_NO_THROW(topo::validate_topology(t));
  t.switch_table_capacity.pop_back();
  EXPECT_THROW(topo::validate_topology(t), std::logic_error);
  t = path_topology(4.0);
  t.switch_table_capacity[0] = 0.0;
  EXPECT_THROW(topo::validate_topology(t), std::logic_error);
  EXPECT_THROW(topo::assign_table_capacities(t, 0.5), std::invalid_argument);
}

TEST(TableCapacity, ThroughputScalesWithTableSize) {
  // On a random topology with abundant bandwidth/compute, admissions scale
  // with the per-switch table budget.
  util::Rng rng(7);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  wo.capacities.min_compute_mhz = 100000;
  wo.capacities.max_compute_mhz = 100000;

  std::size_t last = 0;
  for (double entries : {5.0, 15.0, 45.0}) {
    util::Rng topo_rng(7);
    topo::Topology t = topo::make_waxman(40, topo_rng, wo);
    topo::assign_table_capacities(t, entries);
    util::Rng workload(9);
    sim::RequestGenerator gen(t, workload);
    OnlineCp algo(t);
    const sim::SimulationMetrics m = sim::run_online(algo, gen.sequence(120));
    EXPECT_GE(m.num_admitted, last);
    last = m.num_admitted;
  }
  EXPECT_GT(last, 0u);
}

TEST(TableCapacity, ReleaseRestoresEntriesInDynamicRuns) {
  topo::Topology t = path_topology(2.0);
  OnlineCp algo(t);
  const AdmissionDecision d = algo.process(simple_request(1));
  ASSERT_TRUE(d.admitted);
  EXPECT_DOUBLE_EQ(algo.resources().residual_table_entries(0), 1.0);
  algo.release(d.footprint);
  EXPECT_DOUBLE_EQ(algo.resources().residual_table_entries(0), 2.0);
}

}  // namespace
}  // namespace nfvm::core
