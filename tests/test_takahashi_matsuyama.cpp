#include <gtest/gtest.h>

#include <vector>

#include "graph/components.h"
#include "graph/steiner.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

Graph random_connected_graph(util::Rng& rng, std::size_t n, double p) {
  for (;;) {
    Graph g(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) g.add_edge(u, v, rng.uniform_real(0.5, 10.0));
      }
    }
    if (is_connected(g)) return g;
  }
}

TEST(TakahashiMatsuyama, SingleTerminal) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const SteinerResult st = takahashi_matsuyama_steiner(g, std::vector<VertexId>{1});
  EXPECT_TRUE(st.connected);
  EXPECT_TRUE(st.edges.empty());
}

TEST(TakahashiMatsuyama, TwoTerminalsShortestPath) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 10.0);
  const SteinerResult st =
      takahashi_matsuyama_steiner(g, std::vector<VertexId>{0, 3});
  EXPECT_TRUE(st.connected);
  EXPECT_DOUBLE_EQ(st.weight, 3.0);
}

TEST(TakahashiMatsuyama, DisconnectedTerminals) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const SteinerResult st =
      takahashi_matsuyama_steiner(g, std::vector<VertexId>{0, 3});
  EXPECT_FALSE(st.connected);
}

TEST(TakahashiMatsuyama, EmptyTerminalsThrow) {
  Graph g(2);
  EXPECT_THROW(takahashi_matsuyama_steiner(g, std::vector<VertexId>{}),
               std::invalid_argument);
}

TEST(TakahashiMatsuyama, TerminalOnPathHandled) {
  // Path 0-1-2 with terminals {0, 1, 2}: terminal 1 lies on the path to 2.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const SteinerResult st =
      takahashi_matsuyama_steiner(g, std::vector<VertexId>{0, 1, 2});
  EXPECT_TRUE(st.connected);
  EXPECT_DOUBLE_EQ(st.weight, 2.0);
  EXPECT_EQ(st.edges.size(), 2u);
}

TEST(TakahashiMatsuyama, ProducesValidTreeOnRandomGraphs) {
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(rng, 20, 0.25);
    std::vector<VertexId> terminals;
    for (std::size_t p : rng.sample_without_replacement(20, 5)) {
      terminals.push_back(static_cast<VertexId>(p));
    }
    const SteinerResult st = takahashi_matsuyama_steiner(g, terminals);
    ASSERT_TRUE(st.connected);
    EXPECT_TRUE(is_steiner_tree(g, st.edges, terminals)) << "trial " << trial;
  }
}

class TmRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TmRatioTest, WithinTwiceOptimal) {
  util::Rng rng(GetParam());
  const Graph g = random_connected_graph(rng, 14, 0.3);
  std::vector<VertexId> terminals;
  for (std::size_t p : rng.sample_without_replacement(14, 5)) {
    terminals.push_back(static_cast<VertexId>(p));
  }
  const SteinerResult tm = takahashi_matsuyama_steiner(g, terminals);
  const SteinerResult exact = exact_steiner(g, terminals);
  ASSERT_TRUE(tm.connected);
  ASSERT_TRUE(exact.connected);
  EXPECT_GE(tm.weight + 1e-9, exact.weight);
  EXPECT_LE(tm.weight, 2.0 * (1.0 - 1.0 / 5.0) * exact.weight + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TmRatioTest,
                         ::testing::Values(201u, 202u, 203u, 204u, 205u, 206u,
                                           207u, 208u, 209u, 210u));

TEST(SteinerEngineDispatch, SelectsRequestedEngine) {
  util::Rng rng(31);
  const Graph g = random_connected_graph(rng, 16, 0.3);
  const std::vector<VertexId> terminals{0, 5, 10, 15};
  const SteinerResult kmb = steiner_tree(g, terminals, SteinerEngine::kKmb);
  const SteinerResult direct_kmb = kmb_steiner(g, terminals);
  EXPECT_EQ(kmb.edges, direct_kmb.edges);
  const SteinerResult tm =
      steiner_tree(g, terminals, SteinerEngine::kTakahashiMatsuyama);
  const SteinerResult direct_tm = takahashi_matsuyama_steiner(g, terminals);
  EXPECT_EQ(tm.edges, direct_tm.edges);
}

TEST(SteinerEngineDispatch, BothEnginesValidTrees) {
  util::Rng rng(37);
  const Graph g = random_connected_graph(rng, 25, 0.2);
  std::vector<VertexId> terminals;
  for (std::size_t p : rng.sample_without_replacement(25, 7)) {
    terminals.push_back(static_cast<VertexId>(p));
  }
  for (SteinerEngine engine :
       {SteinerEngine::kKmb, SteinerEngine::kTakahashiMatsuyama}) {
    const SteinerResult st = steiner_tree(g, terminals, engine);
    ASSERT_TRUE(st.connected);
    EXPECT_TRUE(is_steiner_tree(g, st.edges, terminals));
  }
}

}  // namespace
}  // namespace nfvm::graph
