// ThreadPool: exactly-once index coverage, nested-region serialization,
// exception propagation, and the global pool sizing knobs.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace nfvm::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no synchronization: must be inline
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t i) {
    // The nested region runs inline on whichever thread executes `i`.
    pool.parallel_for(kInner, [&](std::size_t j) {
      hits[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
  }
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing region.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(32, [&](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 32u);
}

TEST(ThreadPool, SetGlobalThreadsResizes) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().num_threads(), 3u);
  std::atomic<std::size_t> sum{0};
  ThreadPool::global().parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().num_threads(), 1u);
}

}  // namespace
}  // namespace nfvm::util
