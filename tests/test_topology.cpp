#include "topology/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace nfvm::topo {
namespace {

Topology tiny_topology() {
  Topology t;
  t.name = "tiny";
  t.graph = graph::Graph(4);
  t.graph.add_edge(0, 1, 1.0);
  t.graph.add_edge(1, 2, 1.0);
  t.graph.add_edge(2, 3, 1.0);
  return t;
}

TEST(Topology, IsServerUsesBinarySearch) {
  Topology t = tiny_topology();
  t.servers = {1, 3};
  EXPECT_TRUE(t.is_server(1));
  EXPECT_TRUE(t.is_server(3));
  EXPECT_FALSE(t.is_server(0));
  EXPECT_FALSE(t.is_server(2));
}

TEST(Topology, ChooseServersCountAndSorted) {
  Topology t = tiny_topology();
  util::Rng rng(1);
  choose_servers(t, 2, rng);
  EXPECT_EQ(t.servers.size(), 2u);
  EXPECT_TRUE(std::is_sorted(t.servers.begin(), t.servers.end()));
  EXPECT_LT(t.servers[1], 4u);
}

TEST(Topology, ChooseServersRejectsBadCounts) {
  Topology t = tiny_topology();
  util::Rng rng(1);
  EXPECT_THROW(choose_servers(t, 0, rng), std::invalid_argument);
  EXPECT_THROW(choose_servers(t, 5, rng), std::invalid_argument);
}

TEST(Topology, ChooseServersFractionCeils) {
  Topology t = tiny_topology();
  util::Rng rng(2);
  choose_servers_fraction(t, 0.10, rng);  // ceil(0.4) = 1
  EXPECT_EQ(t.servers.size(), 1u);
  choose_servers_fraction(t, 0.5, rng);
  EXPECT_EQ(t.servers.size(), 2u);
  EXPECT_THROW(choose_servers_fraction(t, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(choose_servers_fraction(t, 1.5, rng), std::invalid_argument);
}

TEST(Topology, AssignCapacitiesWithinPaperRanges) {
  Topology t = tiny_topology();
  util::Rng rng(3);
  choose_servers(t, 2, rng);
  assign_capacities(t, rng);
  ASSERT_EQ(t.link_bandwidth.size(), t.num_links());
  for (double b : t.link_bandwidth) {
    EXPECT_GE(b, 1000.0);
    EXPECT_LE(b, 10000.0);
  }
  for (graph::VertexId v = 0; v < t.num_switches(); ++v) {
    if (t.is_server(v)) {
      EXPECT_GE(t.server_compute[v], 4000.0);
      EXPECT_LE(t.server_compute[v], 12000.0);
    } else {
      EXPECT_DOUBLE_EQ(t.server_compute[v], 0.0);
    }
  }
}

TEST(Topology, AssignCapacitiesCustomRanges) {
  Topology t = tiny_topology();
  util::Rng rng(4);
  choose_servers(t, 1, rng);
  CapacityOptions opts;
  opts.min_bandwidth_mbps = 500;
  opts.max_bandwidth_mbps = 600;
  opts.min_compute_mhz = 100;
  opts.max_compute_mhz = 200;
  assign_capacities(t, rng, opts);
  for (double b : t.link_bandwidth) {
    EXPECT_GE(b, 500.0);
    EXPECT_LE(b, 600.0);
  }
}

TEST(Topology, AssignCapacitiesRejectsBadRanges) {
  Topology t = tiny_topology();
  util::Rng rng(4);
  choose_servers(t, 1, rng);
  CapacityOptions opts;
  opts.min_bandwidth_mbps = 10;
  opts.max_bandwidth_mbps = 5;
  EXPECT_THROW(assign_capacities(t, rng, opts), std::invalid_argument);
}

TEST(Topology, ValidateAcceptsWellFormed) {
  Topology t = tiny_topology();
  util::Rng rng(5);
  choose_servers(t, 2, rng);
  assign_capacities(t, rng);
  EXPECT_NO_THROW(validate_topology(t));
}

TEST(Topology, ValidateRejectsMissingCapacities) {
  Topology t = tiny_topology();
  t.servers = {0};
  EXPECT_THROW(validate_topology(t), std::logic_error);
}

TEST(Topology, ValidateRejectsNoServers) {
  Topology t = tiny_topology();
  util::Rng rng(6);
  choose_servers(t, 1, rng);
  assign_capacities(t, rng);
  t.servers.clear();
  EXPECT_THROW(validate_topology(t), std::logic_error);
}

TEST(Topology, ValidateRejectsDisconnected) {
  Topology t;
  t.graph = graph::Graph(3);
  t.graph.add_edge(0, 1, 1.0);
  util::Rng rng(7);
  choose_servers(t, 1, rng);
  assign_capacities(t, rng);
  EXPECT_THROW(validate_topology(t), std::logic_error);
}

TEST(Topology, ValidateRejectsUnsortedServers) {
  Topology t = tiny_topology();
  util::Rng rng(8);
  choose_servers(t, 2, rng);
  assign_capacities(t, rng);
  std::swap(t.servers[0], t.servers[1]);
  EXPECT_THROW(validate_topology(t), std::logic_error);
}

}  // namespace
}  // namespace nfvm::topo
