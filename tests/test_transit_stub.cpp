#include "topology/transit_stub.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/dijkstra.h"
#include "util/rng.h"

namespace nfvm::topo {
namespace {

TEST(TransitStub, ExactNodeCount) {
  util::Rng rng(1);
  for (std::size_t n : {50u, 100u, 200u}) {
    const Topology t = make_transit_stub(n, rng);
    EXPECT_EQ(t.num_switches(), n);
  }
}

TEST(TransitStub, ConnectedAndValid) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    util::Rng rng(seed);
    const Topology t = make_transit_stub(80, rng);
    EXPECT_TRUE(graph::is_connected(t.graph)) << "seed " << seed;
    EXPECT_NO_THROW(validate_topology(t));
  }
}

TEST(TransitStub, HierarchicalDiameterExceedsCoreDiameter) {
  // Paths between stub switches funnel through the small core, so typical
  // distances exceed core-to-core distances.
  util::Rng rng(3);
  const Topology t = make_transit_stub(120, rng);
  const graph::ShortestPaths sp = graph::dijkstra(t.graph, t.num_switches() - 1);
  double max_dist = 0;
  for (graph::VertexId v = 0; v < t.num_switches(); ++v) {
    max_dist = std::max(max_dist, sp.dist[v]);
  }
  EXPECT_GE(max_dist, 4.0);  // at least stub -> core -> core -> stub depth
}

TEST(TransitStub, CoreRingPresent) {
  util::Rng rng(4);
  TransitStubOptions opts;
  opts.transit_nodes = 5;
  const Topology t = make_transit_stub(60, rng, opts);
  for (graph::VertexId c = 0; c < 5; ++c) {
    EXPECT_TRUE(t.graph.find_edge(c, (c + 1) % 5).has_value())
        << "missing core ring edge " << c;
  }
}

TEST(TransitStub, ServerFractionRespected) {
  util::Rng rng(5);
  TransitStubOptions opts;
  opts.server_fraction = 0.2;
  const Topology t = make_transit_stub(100, rng, opts);
  EXPECT_EQ(t.servers.size(), 20u);
}

TEST(TransitStub, RejectsBadOptions) {
  util::Rng rng(6);
  EXPECT_THROW(make_transit_stub(4, rng), std::invalid_argument);
  TransitStubOptions opts;
  opts.mean_stub_size = 1;
  EXPECT_THROW(make_transit_stub(50, rng, opts), std::invalid_argument);
  opts = {};
  opts.transit_nodes = 60;
  EXPECT_THROW(make_transit_stub(50, rng, opts), std::invalid_argument);
}

TEST(TransitStub, DeterministicGivenSeed) {
  util::Rng a(7);
  util::Rng b(7);
  const Topology ta = make_transit_stub(70, a);
  const Topology tb = make_transit_stub(70, b);
  ASSERT_EQ(ta.num_links(), tb.num_links());
  for (graph::EdgeId e = 0; e < ta.num_links(); ++e) {
    EXPECT_EQ(ta.graph.edge(e).u, tb.graph.edge(e).u);
    EXPECT_EQ(ta.graph.edge(e).v, tb.graph.edge(e).v);
  }
}

TEST(TransitStub, SparserThanFlatWaxmanDefault) {
  util::Rng rng(8);
  const Topology t = make_transit_stub(100, rng);
  const double mean_degree =
      2.0 * static_cast<double>(t.num_links()) / static_cast<double>(t.num_switches());
  EXPECT_LT(mean_degree, 6.0);
  EXPECT_GE(mean_degree, 2.0);
}

}  // namespace
}  // namespace nfvm::topo
