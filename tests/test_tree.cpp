#include "graph/tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dijkstra.h"
#include "graph/steiner.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

/// Balanced binary tree on 7 vertices: 0 -> (1,2), 1 -> (3,4), 2 -> (5,6).
struct BinTree {
  Graph g{7};
  std::vector<EdgeId> edges;
  BinTree() {
    edges.push_back(g.add_edge(0, 1, 1.0));
    edges.push_back(g.add_edge(0, 2, 2.0));
    edges.push_back(g.add_edge(1, 3, 3.0));
    edges.push_back(g.add_edge(1, 4, 4.0));
    edges.push_back(g.add_edge(2, 5, 5.0));
    edges.push_back(g.add_edge(2, 6, 6.0));
  }
};

TEST(RootedTree, ParentsAndDepths) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  EXPECT_EQ(rt.root(), 0u);
  EXPECT_EQ(rt.parent(0), kInvalidVertex);
  EXPECT_EQ(rt.parent(3), 1u);
  EXPECT_EQ(rt.parent(6), 2u);
  EXPECT_EQ(rt.depth(0), 0u);
  EXPECT_EQ(rt.depth(1), 1u);
  EXPECT_EQ(rt.depth(5), 2u);
}

TEST(RootedTree, DistFromRoot) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  EXPECT_DOUBLE_EQ(rt.dist_from_root(0), 0.0);
  EXPECT_DOUBLE_EQ(rt.dist_from_root(4), 5.0);   // 1 + 4
  EXPECT_DOUBLE_EQ(rt.dist_from_root(6), 8.0);   // 2 + 6
}

TEST(RootedTree, LcaPairs) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  EXPECT_EQ(rt.lca(3, 4), 1u);
  EXPECT_EQ(rt.lca(3, 6), 0u);
  EXPECT_EQ(rt.lca(5, 6), 2u);
  EXPECT_EQ(rt.lca(1, 3), 1u);   // ancestor case
  EXPECT_EQ(rt.lca(0, 6), 0u);   // root case
  EXPECT_EQ(rt.lca(4, 4), 4u);   // identical vertices
}

TEST(RootedTree, IteratedLca) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  EXPECT_EQ(rt.lca(std::vector<VertexId>{3, 4}), 1u);
  EXPECT_EQ(rt.lca(std::vector<VertexId>{3, 4, 5}), 0u);
  EXPECT_EQ(rt.lca(std::vector<VertexId>{6}), 6u);
  EXPECT_THROW(rt.lca(std::vector<VertexId>{}), std::invalid_argument);
}

TEST(RootedTree, IsAncestor) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  EXPECT_TRUE(rt.is_ancestor(0, 6));
  EXPECT_TRUE(rt.is_ancestor(1, 4));
  EXPECT_TRUE(rt.is_ancestor(4, 4));
  EXPECT_FALSE(rt.is_ancestor(1, 5));
  EXPECT_FALSE(rt.is_ancestor(4, 1));
}

TEST(RootedTree, PathVertices) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  EXPECT_EQ(rt.path_vertices(3, 4), (std::vector<VertexId>{3, 1, 4}));
  EXPECT_EQ(rt.path_vertices(3, 6), (std::vector<VertexId>{3, 1, 0, 2, 6}));
  EXPECT_EQ(rt.path_vertices(0, 5), (std::vector<VertexId>{0, 2, 5}));
  EXPECT_EQ(rt.path_vertices(5, 5), (std::vector<VertexId>{5}));
}

TEST(RootedTree, PathEdgesAndWeight) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  const auto edges = rt.path_edges(3, 6);
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(rt.path_weight(3, 6), 3.0 + 1.0 + 2.0 + 6.0);
  EXPECT_DOUBLE_EQ(rt.path_weight(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(rt.path_weight(0, 4), 5.0);
}

TEST(RootedTree, PathEdgesInTravelOrder) {
  BinTree t;
  const RootedTree rt(t.g, t.edges, 0);
  const auto edges = rt.path_edges(4, 3);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], t.edges[3]);  // 4 -> 1
  EXPECT_EQ(edges[1], t.edges[2]);  // 1 -> 3
}

TEST(RootedTree, ForestExcludesOtherTree) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(2, 3, 1.0);
  const RootedTree rt(g, std::vector<EdgeId>{a, b}, 0);
  EXPECT_TRUE(rt.contains(1));
  EXPECT_FALSE(rt.contains(2));
  EXPECT_THROW(rt.parent(2), std::out_of_range);
}

TEST(RootedTree, CycleDetected) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(1, 2, 1.0);
  const EdgeId c = g.add_edge(2, 0, 1.0);
  EXPECT_THROW(RootedTree(g, std::vector<EdgeId>{a, b, c}, 0),
               std::invalid_argument);
}

TEST(RootedTree, ParallelEdgeCycleDetected) {
  Graph g(2);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(0, 1, 2.0);
  EXPECT_THROW(RootedTree(g, std::vector<EdgeId>{a, b}, 0),
               std::invalid_argument);
}

TEST(RootedTree, SelfLoopRejected) {
  Graph g(2);
  const EdgeId a = g.add_edge(0, 0, 1.0);
  EXPECT_THROW(RootedTree(g, std::vector<EdgeId>{a}, 0), std::invalid_argument);
}

TEST(RootedTree, InvalidRootThrows) {
  Graph g(2);
  EXPECT_THROW(RootedTree(g, std::vector<EdgeId>{}, 9), std::out_of_range);
}

TEST(RootedTree, EmptyTreeSingleVertex) {
  Graph g(3);
  const RootedTree rt(g, std::vector<EdgeId>{}, 1);
  EXPECT_TRUE(rt.contains(1));
  EXPECT_FALSE(rt.contains(0));
  EXPECT_EQ(rt.vertices().size(), 1u);
  EXPECT_EQ(rt.path_vertices(1, 1), (std::vector<VertexId>{1}));
}

TEST(RootedTree, LcaAgreesWithBruteForceOnRandomTrees) {
  util::Rng rng(42);
  const topo::Topology topo = topo::make_waxman(60, rng);
  // Use a Steiner tree over a handful of terminals as a random tree.
  const SteinerResult st =
      kmb_steiner(topo.graph, std::vector<VertexId>{0, 10, 20, 30, 40, 50});
  ASSERT_TRUE(st.connected);
  const RootedTree rt(topo.graph, st.edges, 0);

  // Brute force: LCA via parent chains.
  auto brute_lca = [&](VertexId a, VertexId b) {
    std::vector<VertexId> chain;
    for (VertexId v = a;; v = rt.parent(v)) {
      chain.push_back(v);
      if (v == rt.root()) break;
    }
    for (VertexId v = b;; v = rt.parent(v)) {
      if (std::find(chain.begin(), chain.end(), v) != chain.end()) return v;
      if (v == rt.root()) return rt.root();
    }
  };

  const auto& verts = rt.vertices();
  for (std::size_t i = 0; i < verts.size(); ++i) {
    for (std::size_t j = i; j < verts.size(); ++j) {
      EXPECT_EQ(rt.lca(verts[i], verts[j]), brute_lca(verts[i], verts[j]));
    }
  }
}

TEST(RootedTree, PathWeightMatchesEdgeSum) {
  util::Rng rng(17);
  const topo::Topology topo = topo::make_waxman(40, rng);
  const SteinerResult st =
      kmb_steiner(topo.graph, std::vector<VertexId>{1, 11, 21, 31});
  ASSERT_TRUE(st.connected);
  const RootedTree rt(topo.graph, st.edges, 1);
  const auto& verts = rt.vertices();
  for (VertexId a : verts) {
    for (VertexId b : verts) {
      double sum = 0.0;
      for (EdgeId e : rt.path_edges(a, b)) sum += topo.graph.weight(e);
      EXPECT_NEAR(sum, rt.path_weight(a, b), 1e-9);
    }
  }
}

}  // namespace
}  // namespace nfvm::graph
