#include "graph/union_find.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace nfvm::graph {
namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.set_size(0), 2u);
}

TEST(UnionFind, UniteTwiceReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFind, SelfUniteIsNoop) {
  UnionFind uf(3);
  EXPECT_FALSE(uf.unite(2, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(2, 3));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 4));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(4), 5u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW(uf.find(2), std::out_of_range);
  EXPECT_THROW(uf.unite(0, 9), std::out_of_range);
}

TEST(UnionFind, EmptyStructure) {
  UnionFind uf(0);
  EXPECT_EQ(uf.num_sets(), 0u);
  EXPECT_EQ(uf.size(), 0u);
}

TEST(UnionFind, RandomizedInvariant) {
  // Property: num_sets decreases by exactly one per successful unite, and
  // set sizes always sum to n.
  util::Rng rng(77);
  const std::size_t n = 200;
  UnionFind uf(n);
  std::size_t expected_sets = n;
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    if (uf.unite(a, b)) --expected_sets;
    EXPECT_EQ(uf.num_sets(), expected_sets);
  }
  // Sum of distinct-root set sizes equals n.
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (uf.find(v) == v) total += uf.set_size(v);
  }
  EXPECT_EQ(total, n);
}

}  // namespace
}  // namespace nfvm::graph
