#include "topology/waxman.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "util/rng.h"

namespace nfvm::topo {
namespace {

TEST(Waxman, GeneratesRequestedSize) {
  util::Rng rng(1);
  const Topology t = make_waxman(50, rng);
  EXPECT_EQ(t.num_switches(), 50u);
  EXPECT_GT(t.num_links(), 49u);  // connected and denser than a tree
}

TEST(Waxman, AlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed);
    const Topology t = make_waxman(60, rng);
    EXPECT_TRUE(graph::is_connected(t.graph)) << "seed " << seed;
  }
}

TEST(Waxman, TenPercentServersByDefault) {
  util::Rng rng(2);
  const Topology t = make_waxman(100, rng);
  EXPECT_EQ(t.servers.size(), 10u);
}

TEST(Waxman, ServerFractionRoundsUp) {
  util::Rng rng(3);
  const Topology t = make_waxman(55, rng);
  EXPECT_EQ(t.servers.size(), 6u);  // ceil(5.5)
}

TEST(Waxman, ValidatesCleanly) {
  util::Rng rng(4);
  const Topology t = make_waxman(70, rng);
  EXPECT_NO_THROW(validate_topology(t));
}

TEST(Waxman, CoordinatesInUnitSquare) {
  util::Rng rng(5);
  const Topology t = make_waxman(40, rng);
  ASSERT_EQ(t.coords.size(), 40u);
  for (const Point& p : t.coords) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(Waxman, DeterministicGivenSeed) {
  util::Rng a(42);
  util::Rng b(42);
  const Topology ta = make_waxman(30, a);
  const Topology tb = make_waxman(30, b);
  EXPECT_EQ(ta.num_links(), tb.num_links());
  EXPECT_EQ(ta.servers, tb.servers);
  for (graph::EdgeId e = 0; e < ta.num_links(); ++e) {
    EXPECT_EQ(ta.graph.edge(e).u, tb.graph.edge(e).u);
    EXPECT_EQ(ta.graph.edge(e).v, tb.graph.edge(e).v);
  }
}

TEST(Waxman, DensityGrowsWithBeta) {
  util::Rng a(7);
  util::Rng b(7);
  WaxmanOptions sparse;
  sparse.beta = 0.1;
  WaxmanOptions dense;
  dense.beta = 0.9;
  const Topology ts = make_waxman(60, a, sparse);
  const Topology td = make_waxman(60, b, dense);
  EXPECT_LT(ts.num_links(), td.num_links());
}

TEST(Waxman, RejectsBadArguments) {
  util::Rng rng(8);
  EXPECT_THROW(make_waxman(1, rng), std::invalid_argument);
  WaxmanOptions bad;
  bad.alpha = 0.0;
  EXPECT_THROW(make_waxman(10, rng, bad), std::invalid_argument);
  bad.alpha = 0.2;
  bad.beta = 1.5;
  EXPECT_THROW(make_waxman(10, rng, bad), std::invalid_argument);
}

TEST(Waxman, NoCapacitiesWhenDisabled) {
  util::Rng rng(9);
  WaxmanOptions opts;
  opts.assign_capacities = false;
  const Topology t = make_waxman(20, rng, opts);
  for (double b : t.link_bandwidth) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Waxman, PaperSizesGenerate) {
  for (std::size_t n : {50u, 100u, 150u, 200u, 250u}) {
    util::Rng rng(n);
    const Topology t = make_waxman(n, rng);
    EXPECT_EQ(t.num_switches(), n);
    EXPECT_NO_THROW(validate_topology(t));
  }
}

}  // namespace
}  // namespace nfvm::topo
