#include "graph/yen_ksp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

/// The classic Yen example shape: multiple distinct routes 0 -> 5.
Graph diamond_chain() {
  Graph g(6);
  g.add_edge(0, 1, 1.0);  // e0
  g.add_edge(0, 2, 2.0);  // e1
  g.add_edge(1, 2, 1.0);  // e2
  g.add_edge(1, 3, 3.0);  // e3
  g.add_edge(2, 3, 1.0);  // e4
  g.add_edge(2, 4, 4.0);  // e5
  g.add_edge(3, 4, 1.0);  // e6
  g.add_edge(3, 5, 5.0);  // e7
  g.add_edge(4, 5, 1.0);  // e8
  return g;
}

bool is_simple_path(const Graph& g, const WeightedPath& p, VertexId s, VertexId t) {
  if (p.vertices.empty() || p.vertices.front() != s || p.vertices.back() != t) {
    return false;
  }
  std::set<VertexId> distinct(p.vertices.begin(), p.vertices.end());
  if (distinct.size() != p.vertices.size()) return false;  // loop
  if (p.edges.size() + 1 != p.vertices.size()) return false;
  double w = 0.0;
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    const Edge& e = g.edge(p.edges[i]);
    const bool forward = e.u == p.vertices[i] && e.v == p.vertices[i + 1];
    const bool backward = e.v == p.vertices[i] && e.u == p.vertices[i + 1];
    if (!forward && !backward) return false;
    w += e.weight;
  }
  return std::abs(w - p.weight) < 1e-9;
}

TEST(YenKsp, FirstPathIsShortest) {
  const Graph g = diamond_chain();
  const auto paths = yen_k_shortest_paths(g, 0, 5, 1);
  ASSERT_EQ(paths.size(), 1u);
  // Two optimal routes of weight 5 exist (0-1-2-3-4-5 and 0-2-3-4-5);
  // whichever tie-break Dijkstra takes, the weight is 5.
  EXPECT_DOUBLE_EQ(paths[0].weight, 5.0);
  EXPECT_TRUE(is_simple_path(g, paths[0], 0, 5));
}

TEST(YenKsp, PathsAreSortedSimpleAndDistinct) {
  const Graph g = diamond_chain();
  const auto paths = yen_k_shortest_paths(g, 0, 5, 10);
  ASSERT_GE(paths.size(), 3u);
  std::set<std::vector<VertexId>> distinct;
  double last = 0.0;
  for (const WeightedPath& p : paths) {
    EXPECT_TRUE(is_simple_path(g, p, 0, 5));
    EXPECT_GE(p.weight + 1e-12, last);
    last = p.weight;
    EXPECT_TRUE(distinct.insert(p.vertices).second) << "duplicate path";
  }
}

TEST(YenKsp, SecondPathIsSecondBest) {
  const Graph g = diamond_chain();
  const auto paths = yen_k_shortest_paths(g, 0, 5, 2);
  ASSERT_EQ(paths.size(), 2u);
  // Alternatives: 0-2-3-4-5 = 2+1+1+1 = 5 (tie) or deviations of weight >= 5.
  EXPECT_DOUBLE_EQ(paths[1].weight, 5.0);
  EXPECT_NE(paths[1].vertices, paths[0].vertices);
}

TEST(YenKsp, ExhaustsWhenFewPathsExist) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto paths = yen_k_shortest_paths(g, 0, 2, 5);
  EXPECT_EQ(paths.size(), 1u);  // only one simple path exists
}

TEST(YenKsp, UnreachableTargetEmpty) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto paths = yen_k_shortest_paths(g, 0, 2, 3);
  EXPECT_TRUE(paths.empty());
}

TEST(YenKsp, ParallelEdgesCountAsDistinctRoutes) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  const auto paths = yen_k_shortest_paths(g, 0, 1, 5);
  // Vertex sequences are identical, so Yen (loopless, vertex-sequence
  // deduplicated) reports one path using the cheaper edge.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 1.0);
}

TEST(YenKsp, ArgumentValidation) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(yen_k_shortest_paths(g, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(yen_k_shortest_paths(g, 0, 0, 2), std::invalid_argument);
  EXPECT_THROW(yen_k_shortest_paths(g, 0, 9, 2), std::out_of_range);
}

TEST(YenKsp, AgreesWithBruteForceOnSmallRandomGraphs) {
  // Enumerate all simple paths by DFS and compare the best 4.
  util::Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g(7);
    for (VertexId u = 0; u < 7; ++u) {
      for (VertexId v = u + 1; v < 7; ++v) {
        if (rng.bernoulli(0.5)) g.add_edge(u, v, rng.uniform_real(1.0, 5.0));
      }
    }
    // Brute force.
    std::vector<double> all_weights;
    std::vector<VertexId> stack{0};
    std::vector<bool> used(7, false);
    used[0] = true;
    std::function<void(VertexId, double)> dfs = [&](VertexId u, double w) {
      if (u == 6) {
        all_weights.push_back(w);
        return;
      }
      for (const Adjacency& adj : g.neighbors(u)) {
        if (used[adj.neighbor]) continue;
        used[adj.neighbor] = true;
        dfs(adj.neighbor, w + g.weight(adj.edge));
        used[adj.neighbor] = false;
      }
    };
    dfs(0, 0.0);
    std::sort(all_weights.begin(), all_weights.end());

    const auto paths = yen_k_shortest_paths(g, 0, 6, 4);
    ASSERT_EQ(paths.size(), std::min<std::size_t>(4, all_weights.size()))
        << "trial " << trial;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_NEAR(paths[i].weight, all_weights[i], 1e-9)
          << "trial " << trial << " path " << i;
    }
  }
}

TEST(YenKsp, WorksOnGeneratedTopology) {
  util::Rng rng(11);
  const topo::Topology t = topo::make_waxman(40, rng);
  const auto paths = yen_k_shortest_paths(t.graph, 0, 39, 8);
  ASSERT_GE(paths.size(), 2u);
  for (const WeightedPath& p : paths) {
    EXPECT_TRUE(is_simple_path(t.graph, p, 0, 39));
  }
}

}  // namespace
}  // namespace nfvm::graph
