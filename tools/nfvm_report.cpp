// nfvm-report - inspect, validate and diff observability artifacts.
//
//   nfvm-report summary ARTIFACT
//       Print a human-readable overview of one artifact (metrics JSON,
//       BENCH_*.json, manifest.json or a --run-dir bundle directory).
//   nfvm-report diff BASELINE CANDIDATE [options]
//       Compare two artifacts key-by-key and print the delta table.
//   nfvm-report --check BASELINE CANDIDATE [options]
//       Like diff, but exit 1 when any delta exceeds the threshold - the
//       CI perf-regression gate.
//   nfvm-report --validate FILE...
//       Schema-validate artifacts (JSON documents or .jsonl logs); exit 1
//       on the first invalid file.
//   nfvm-report latency ARTIFACT [--md|--json] [--check]
//       Per-phase admission-latency table (p50/p90/p99, HDR, <= 1% relative
//       error) aggregated from an events.jsonl or a run-dir bundle. --check
//       additionally verifies event-stream invariants and exits 1 on a
//       violation - the CI observability gate.
//   nfvm-report explain ARTIFACT REQUEST
//       Print one request's full decision provenance (phase timings, scan
//       counts, cost breakdown, reject context). REQUEST is a request id,
//       falling back to the stream index.
//   nfvm-report decisions ARTIFACT
//       Canonical timing-free projection of the decision stream, one line
//       per request - byte-identical across thread counts.
//   nfvm-report slo ARTIFACT [--check]
//       Render an SLO outcome ("nfvm-slo-v1" slo.json, or a run-dir bundle
//       containing one): per-objective windows, error-budget burn, breach
//       records, and - when the bundle carries a timeseries - the
//       per-window latency quantiles. --check exits 1 on a failed
//       objective - the CI soak gate.
//
// Options (diff / --check):
//   --threshold X     relative-change gate, default 0.10 (= 10%)
//   --ignore SUBSTR   keys containing SUBSTR never gate (repeatable);
//                     use for timing columns on noisy runners
//   --min SUBSTR=X    candidate keys containing SUBSTR must be >= X
//                     (repeatable); an absolute floor that gates even when
//                     the key is on the ignore list
//   --md FILE         also write a markdown report ("-" for stdout)
//   --json FILE       also write an "nfvm-report-v1" JSON report ("-")
//
// Exit codes: 0 ok, 1 regression / invalid artifact, 2 usage or load error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "obs/request_events.h"

namespace {

using nfvm::obs::report::Artifact;
using nfvm::obs::report::CompareOptions;
using nfvm::obs::report::CompareReport;

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr
      << "usage: nfvm-report summary ARTIFACT\n"
         "       nfvm-report diff BASELINE CANDIDATE [--threshold X]\n"
         "                   [--ignore SUBSTR]... [--min SUBSTR=VALUE]...\n"
         "                   [--md FILE|-] [--json FILE|-]\n"
         "       nfvm-report --check BASELINE CANDIDATE [diff options]\n"
         "       nfvm-report --validate FILE...\n"
         "       nfvm-report latency EVENTS [--md|--json] [--check]\n"
         "       nfvm-report explain EVENTS REQUEST\n"
         "       nfvm-report decisions EVENTS\n"
         "       nfvm-report slo ARTIFACT [--check]\n"
         "an ARTIFACT is a metrics JSON, a BENCH_*.json, a manifest.json or\n"
         "an nfvm-sim --run-dir directory; EVENTS is an events.jsonl or a\n"
         "run-dir bundle (see docs/observability.md)\n";
  std::exit(error.empty() ? 0 : 2);
}

Artifact load_or_die(const std::string& path) {
  try {
    return nfvm::obs::report::load_artifact(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << path << ": " << e.what() << "\n";
    std::exit(2);
  }
}

/// Writes one of the optional report formats to `path` ("-" = stdout).
template <typename WriteFn>
void emit(const std::string& path, const WriteFn& write) {
  if (path.empty()) return;
  if (path == "-") {
    write(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    std::exit(2);
  }
  write(out);
}

int run_validate(const std::vector<std::string>& files) {
  if (files.empty()) usage("--validate needs at least one file");
  int bad = 0;
  for (const std::string& file : files) {
    const std::string error = nfvm::obs::report::validate_file(file);
    if (error.empty()) {
      std::cout << "ok      " << file << "\n";
    } else {
      std::cout << "INVALID " << file << ": " << error << "\n";
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

int run_diff(const std::string& baseline_path, const std::string& candidate_path,
             const CompareOptions& options, const std::string& md_path,
             const std::string& json_path, bool check) {
  const Artifact baseline = load_or_die(baseline_path);
  const Artifact candidate = load_or_die(candidate_path);
  const CompareReport report =
      nfvm::obs::report::compare_artifacts(baseline, candidate, options);

  nfvm::obs::report::write_report_markdown(std::cout, baseline, candidate,
                                           report, options);
  emit(md_path, [&](std::ostream& out) {
    nfvm::obs::report::write_report_markdown(out, baseline, candidate, report,
                                             options);
  });
  emit(json_path, [&](std::ostream& out) {
    nfvm::obs::report::write_report_json(out, baseline, candidate, report,
                                         options);
  });

  if (report.num_regressions > 0) {
    std::cerr << "nfvm-report: " << report.num_regressions
              << " regression(s) above threshold " << options.threshold;
    if (!report.min_violations.empty()) {
      std::cerr << " (" << report.min_violations.size() << " below a --min floor)";
    }
    std::cerr << "\n";
    if (check) return 1;
  }
  return 0;
}

std::vector<nfvm::obs::report::RequestEvent> load_events_or_die(
    const std::string& path) {
  try {
    return nfvm::obs::report::load_request_events(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << path << ": " << e.what() << "\n";
    std::exit(2);
  }
}

int run_latency(const std::vector<std::string>& args) {
  std::string path;
  bool md = false;
  bool json = false;
  bool check = false;
  for (const std::string& arg : args) {
    if (arg == "--md") md = true;
    else if (arg == "--json") json = true;
    else if (arg == "--check") check = true;
    else if (!arg.empty() && arg[0] == '-') usage("unknown option \"" + arg + "\"");
    else if (path.empty()) path = arg;
    else usage("latency takes exactly one events artifact");
  }
  if (path.empty()) usage("latency needs an events artifact");
  if (md && json) usage("latency: pick one of --md / --json");

  const auto events = load_events_or_die(path);
  if (check) {
    const std::string error = nfvm::obs::report::check_events(events);
    if (!error.empty()) {
      std::cerr << "nfvm-report latency --check: " << path << ": " << error
                << "\n";
      return 1;
    }
  }
  const auto report = nfvm::obs::report::aggregate_latency(events);
  if (json) nfvm::obs::report::write_latency_json(std::cout, report);
  else if (md) nfvm::obs::report::write_latency_markdown(std::cout, report);
  else nfvm::obs::report::write_latency_text(std::cout, report);
  return 0;
}

int run_slo(const std::vector<std::string>& args) {
  std::string path;
  bool check = false;
  for (const std::string& arg : args) {
    if (arg == "--check") check = true;
    else if (!arg.empty() && arg[0] == '-') usage("unknown option \"" + arg + "\"");
    else if (path.empty()) path = arg;
    else usage("slo takes exactly one artifact");
  }
  if (path.empty()) usage("slo needs a slo.json or run-dir artifact");

  nfvm::obs::report::SloArtifact artifact;
  try {
    artifact = nfvm::obs::report::load_slo_artifact(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  nfvm::obs::report::write_slo_text(std::cout, artifact);
  if (!nfvm::obs::report::slo_pass(artifact.doc)) {
    std::cerr << "nfvm-report slo: objectives failed in " << path << "\n";
    if (check) return 1;
  }
  return 0;
}

int run_explain(const std::string& path, const std::string& selector) {
  const auto events = load_events_or_die(path);
  const nfvm::obs::report::RequestEvent* event =
      nfvm::obs::report::find_request(events, selector);
  if (event == nullptr) {
    std::cerr << "error: no request \"" << selector << "\" in " << path
              << " (" << events.size() << " request events)\n";
    return 2;
  }
  nfvm::obs::report::write_explain(std::cout, *event);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage("no command");
  if (args[0] == "--help" || args[0] == "-h") usage("");

  std::string command = args[0];
  bool check = false;
  if (command == "--check") {
    command = "diff";
    check = true;
  }

  if (command == "--validate") {
    return run_validate({args.begin() + 1, args.end()});
  }

  if (command == "summary") {
    if (args.size() != 2) usage("summary takes exactly one artifact");
    const Artifact artifact = load_or_die(args[1]);
    nfvm::obs::report::write_summary(std::cout, artifact);
    return 0;
  }

  if (command == "latency") {
    return run_latency({args.begin() + 1, args.end()});
  }

  if (command == "explain") {
    if (args.size() != 3) usage("explain takes an events artifact and a request");
    return run_explain(args[1], args[2]);
  }

  if (command == "slo") {
    return run_slo({args.begin() + 1, args.end()});
  }

  if (command == "decisions") {
    if (args.size() != 2) usage("decisions takes exactly one events artifact");
    const auto events = load_events_or_die(args[1]);
    nfvm::obs::report::write_decisions(std::cout, events);
    return 0;
  }

  if (command != "diff") usage("unknown command \"" + command + "\"");

  CompareOptions options;
  std::string md_path;
  std::string json_path;
  std::vector<std::string> positional;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage(arg + " needs a value");
      return args[++i];
    };
    if (arg == "--threshold") {
      try {
        options.threshold = std::stod(next());
      } catch (const std::exception&) {
        usage("--threshold needs a number");
      }
      if (options.threshold < 0.0) usage("--threshold must be >= 0");
    } else if (arg == "--ignore") {
      options.ignore.push_back(next());
    } else if (arg == "--min") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) usage("--min needs SUBSTR=VALUE");
      double bound = 0.0;
      try {
        bound = std::stod(spec.substr(eq + 1));
      } catch (const std::exception&) {
        usage("--min needs a numeric VALUE after '='");
      }
      options.min_bounds.emplace_back(spec.substr(0, eq), bound);
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      usage("unknown option \"" + arg + "\"");
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage("diff needs exactly BASELINE and CANDIDATE");
  }
  return run_diff(positional[0], positional[1], options, md_path, json_path,
                  check);
}
