// nfvm_serve - crash-safe online-admission daemon.
//
//   nfvm-serve [options]
//     --topology <waxman|transit-stub|geant|as1755|as4755>   (default waxman)
//     --nodes <n>            switches for generated topologies (default 100)
//     --seed <s>             RNG seed for the topology (default 1)
//     --algorithm <online_cp|online_sp|online_sp_static>     (default online_cp)
//     --max-delay <ms>       per-request delay bound support (assigns link
//                            delays; must match the trace generator's flag)
//     --socket <path>        serve a Unix stream socket instead of stdin;
//                            connections are accepted one at a time and the
//                            engine state persists across them
//     --snapshot <file>      snapshot target; enables {"cmd":"snapshot"} and
//                            the final drain snapshot (atomic tmp+fsync+rename)
//     --snapshot-every <n>   also snapshot automatically every n processed
//                            lines (requires --snapshot)
//     --restore <file>       rebuild engine state from a snapshot and skip the
//                            consumed input prefix; the subsequent reply
//                            stream is byte-identical to an uninterrupted run
//     --max-inflight <n>     bounded inflight queue capacity (default 1024);
//                            a full queue blocks the reader (backpressure)
//     --request-deadline-ms <x>  shed arrive commands that waited in the
//                            queue longer than x ms (reject_cause overload);
//                            0 disables (default; keep 0 for byte-reproducible
//                            runs)
//     --fault-plan <file>    deterministic fault injection ("nfvm-fault-plan-
//                            v1": stalls, garbage lines, duplicate/unknown
//                            departs, mid-stream kills) - see docs/serving.md
//     --threads <n>          worker threads (default NFVM_THREADS env, else 1);
//                            decisions are bit-identical for any thread count
//     --metrics-json <file>  dump the metrics registry as JSON at exit
//     --log-level <level>    error|warn|info|debug (default warn)
//
// Protocol: one JSON command per input line, exactly one JSON reply per line
// on stdout (or the socket) - including structured {"ok":false,...} replies
// with byte offsets for malformed lines. stdout carries nothing but replies;
// diagnostics and the end-of-run summary go to stderr. SIGTERM/SIGINT drain
// gracefully: the in-flight line finishes, a final snapshot and the summary
// are written, exit status 0. Full contract: docs/serving.md.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/daemon.h"
#include "serve/fault_plan.h"
#include "serve/snapshot.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"
#include "topology/transit_stub.h"
#include "topology/waxman.h"
#include "util/thread_pool.h"

namespace {

using namespace nfvm;

constexpr const char* kTopologies = "waxman|transit-stub|geant|as1755|as4755";
constexpr const char* kAlgorithms = "online_cp|online_sp|online_sp_static";
constexpr const char* kLogLevels = "error|warn|info|debug";

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct Options {
  std::string topology = "waxman";
  std::size_t nodes = 100;
  std::uint64_t seed = 1;
  std::string algorithm = "online_cp";
  double max_delay_ms = 0.0;
  std::string socket_path;
  std::string snapshot_path;
  std::size_t snapshot_every = 0;
  std::string restore_path;
  std::size_t max_inflight = 1024;
  double request_deadline_ms = 0.0;
  std::string fault_plan_path;
  std::size_t threads = 0;
  std::string metrics_json;
  /// Loaded eagerly from restore_path / fault_plan_path so a missing,
  /// truncated, or malformed file fails at startup, not after the engine
  /// has been serving for an hour.
  std::optional<serve::Snapshot> restore_snapshot;
  serve::FaultPlan fault_plan;
};

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: nfvm-serve [--topology T] [--nodes N] [--seed S] [--algorithm A]\n"
               "                  [--max-delay MS] [--socket PATH]\n"
               "                  [--snapshot FILE] [--snapshot-every N] [--restore FILE]\n"
               "                  [--max-inflight N] [--request-deadline-ms X]\n"
               "                  [--fault-plan FILE] [--threads N]\n"
               "                  [--metrics-json FILE] [--log-level " << kLogLevels << "]\n"
               "  topologies: " << kTopologies << "\n"
               "  algorithms: " << kAlgorithms << "\n";
  std::exit(error.empty() ? 0 : 2);
}

bool one_of(const std::string& value, std::initializer_list<const char*> accepted) {
  for (const char* a : accepted) {
    if (value == a) return true;
  }
  return false;
}

void validate_writable(const char* flag, const std::string& path) {
  if (path.empty()) return;
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    usage(std::string(flag) + ": cannot open \"" + path + "\" for writing");
  }
}

std::string read_file_or_usage(const char* flag, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) usage(std::string(flag) + ": cannot read \"" + path + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Every flag value is proven usable here - enumerations, queue bounds,
/// writable snapshot target, loadable restore snapshot and fault plan, a
/// bindable socket directory - so a typo can never surface as a mid-serve
/// failure with live clients attached.
void validate_options(Options& opts) {
  if (!one_of(opts.topology, {"waxman", "transit-stub", "geant", "as1755", "as4755"})) {
    usage("--topology must be one of " + std::string(kTopologies) + " (got \"" +
          opts.topology + "\")");
  }
  if (!one_of(opts.algorithm, {"online_cp", "online_sp", "online_sp_static"})) {
    usage("--algorithm must be one of " + std::string(kAlgorithms) + " (got \"" +
          opts.algorithm + "\")");
  }
  if (opts.max_inflight == 0) {
    usage("--max-inflight must be positive (a zero-capacity queue can never "
          "admit a line)");
  }
  if (opts.request_deadline_ms < 0.0) {
    usage("--request-deadline-ms must be non-negative (0 disables shedding)");
  }
  if (opts.snapshot_every > 0 && opts.snapshot_path.empty()) {
    usage("--snapshot-every requires --snapshot (a path to write to)");
  }
  validate_writable("--snapshot", opts.snapshot_path);
  validate_writable("--metrics-json", opts.metrics_json);
  if (!opts.socket_path.empty()) {
    const auto parent = std::filesystem::path(opts.socket_path).parent_path();
    if (!parent.empty() && !std::filesystem::is_directory(parent)) {
      usage("--socket: directory \"" + parent.string() + "\" does not exist");
    }
  }
  if (!opts.restore_path.empty()) {
    try {
      opts.restore_snapshot = serve::load_snapshot(opts.restore_path);
    } catch (const std::exception& e) {
      usage(std::string("--restore: ") + e.what());
    }
  }
  if (!opts.fault_plan_path.empty()) {
    const std::string text = read_file_or_usage("--fault-plan", opts.fault_plan_path);
    try {
      opts.fault_plan = serve::FaultPlan::parse(text);
    } catch (const std::exception& e) {
      usage("--fault-plan " + opts.fault_plan_path + ": " + e.what());
    }
  }
}

Options parse_args(int argc, char** argv) {
  Options opts;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage("");
    else if (arg == "--topology") opts.topology = need_value(i);
    else if (arg == "--nodes") opts.nodes = std::stoul(need_value(i));
    else if (arg == "--seed") opts.seed = std::stoull(need_value(i));
    else if (arg == "--algorithm") opts.algorithm = need_value(i);
    else if (arg == "--max-delay") opts.max_delay_ms = std::stod(need_value(i));
    else if (arg == "--socket") opts.socket_path = need_value(i);
    else if (arg == "--snapshot") opts.snapshot_path = need_value(i);
    else if (arg == "--snapshot-every") opts.snapshot_every = std::stoul(need_value(i));
    else if (arg == "--restore") opts.restore_path = need_value(i);
    else if (arg == "--max-inflight") {
      const std::string value = need_value(i);
      if (!value.empty() && value[0] == '-') usage("--max-inflight must be positive");
      opts.max_inflight = std::stoul(value);
    }
    else if (arg == "--request-deadline-ms") opts.request_deadline_ms = std::stod(need_value(i));
    else if (arg == "--fault-plan") opts.fault_plan_path = need_value(i);
    else if (arg == "--threads") opts.threads = std::stoul(need_value(i));
    else if (arg == "--metrics-json") opts.metrics_json = need_value(i);
    else if (arg == "--log-level") {
      const std::string value = need_value(i);
      const auto level = obs::parse_log_level(value);
      if (!level.has_value()) {
        usage("--log-level must be one of " + std::string(kLogLevels) +
              " (got \"" + value + "\")");
      }
      obs::set_log_level(*level);
    }
    else usage("unknown option " + arg);
  }
  validate_options(opts);
  return opts;
}

topo::Topology build_topology(const Options& opts, util::Rng& rng) {
  if (opts.topology == "waxman") {
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    return topo::make_waxman(opts.nodes, rng, wo);
  }
  if (opts.topology == "transit-stub") return topo::make_transit_stub(opts.nodes, rng);
  if (opts.topology == "geant") return topo::make_geant(rng);
  if (opts.topology == "as1755") return topo::make_as1755(rng);
  return topo::make_as4755(rng);  // validated at parse time
}

std::unique_ptr<core::OnlineAlgorithm> build_algorithm(const std::string& name,
                                                       const topo::Topology& topo) {
  if (name == "online_cp") return std::make_unique<core::OnlineCp>(topo);
  if (name == "online_sp") return std::make_unique<core::OnlineSp>(topo);
  return std::make_unique<core::OnlineSpStatic>(topo);  // validated at parse time
}

/// The configuration echo stamped into snapshots and compared on restore:
/// exactly the knobs that determine the engine's decision stream. Queue
/// sizing, deadlines and fault plans are deliberately absent - they may
/// legitimately differ across a crash/restore boundary.
std::map<std::string, std::string> snapshot_config(const Options& opts) {
  std::map<std::string, std::string> config;
  config["topology"] = opts.topology;
  config["nodes"] = std::to_string(opts.nodes);
  config["seed"] = std::to_string(opts.seed);
  // Only whether delays were assigned matters (it changes the topology RNG
  // consumption); the per-request bound rides in the trace itself.
  config["assign_delays"] = opts.max_delay_ms > 0.0 ? "true" : "false";
  return config;
}

/// Unbuffered std::streambuf over a connected socket fd, so Daemon::run can
/// keep its per-line flush discipline on sockets too.
class FdStreambuf final : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {}

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    const char c = static_cast<char>(ch);
    return write_all(&c, 1) ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return write_all(data, count) ? count : 0;
  }

 private:
  bool write_all(const char* data, std::streamsize count) {
    std::streamsize done = 0;
    while (done < count) {
      const ssize_t n = ::write(fd_, data + done, static_cast<std::size_t>(count - done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer gone (EPIPE); the read side will see EOF
      }
      done += n;
    }
    return true;
  }
  int fd_;
};

void emit_summary(const serve::DaemonStats& stats) {
  obs::JsonLine line;
  line.field("event", "serve_exit")
      .field("stop_cause", stats.stop_cause)
      .field("lines", stats.counters.lines)
      .field("admitted", stats.counters.admitted)
      .field("rejected", stats.counters.rejected)
      .field("overload_rejects", stats.counters.overload_rejects)
      .field("departed", stats.counters.departed)
      .field("parse_errors", stats.counters.parse_errors)
      .field("invalid_requests", stats.counters.invalid_requests)
      .field("snapshots_written", stats.counters.snapshots_written)
      .field("active", stats.active)
      .field("wall_s", stats.wall_seconds)
      .field("p50_us", stats.p50_us)
      .field("p90_us", stats.p90_us)
      .field("p99_us", stats.p99_us);
  std::cerr << line.str() << "\n";
}

/// Accepts connections one at a time until a drain, a signal, or an accept
/// failure. Engine and daemon state (admissions, counters, snapshots) persist
/// across connections.
int serve_socket(const Options& opts, serve::Daemon& daemon) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) usage(std::string("--socket: socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.size() >= sizeof(addr.sun_path)) {
    usage("--socket: path too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, opts.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(opts.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    usage("--socket: cannot bind/listen on \"" + opts.socket_path + "\": " +
          std::strerror(errno));
  }
  obs::log_info("listening on " + opts.socket_path);

  serve::DaemonStats stats;
  for (;;) {
    if (g_stop.load(std::memory_order_relaxed)) {
      stats.stop_cause = "signal";
      break;
    }
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    serve::FdLineSource source(conn, &g_stop);
    FdStreambuf buf(conn);
    std::ostream out(&buf);
    stats = daemon.run(source, out);
    ::close(conn);
    if (stats.stop_cause != "eof") break;  // drain command or signal
  }
  ::close(listener);
  ::unlink(opts.socket_path.c_str());
  emit_summary(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  if (opts.threads > 0) util::ThreadPool::set_global_threads(opts.threads);

  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  util::Rng rng(opts.seed);
  topo::Topology topo = build_topology(opts, rng);
  if (opts.max_delay_ms > 0) topo::assign_delays(topo, rng);
  // stdout carries nothing but protocol replies; diagnostics go to stderr.
  std::cerr << "# nfvm-serve: " << topo.name << ", " << topo.num_switches()
            << " switches, algorithm " << opts.algorithm << "\n";

  auto algorithm = build_algorithm(opts.algorithm, topo);
  serve::DaemonOptions daemon_opts;
  daemon_opts.max_inflight = opts.max_inflight;
  daemon_opts.request_deadline_ms = opts.request_deadline_ms;
  daemon_opts.snapshot_path = opts.snapshot_path;
  daemon_opts.snapshot_every = opts.snapshot_every;
  daemon_opts.fault_plan = opts.fault_plan;
  daemon_opts.stop = &g_stop;
  serve::Daemon daemon(*algorithm, snapshot_config(opts), daemon_opts);
  if (opts.restore_snapshot.has_value()) {
    try {
      daemon.restore(*opts.restore_snapshot);
    } catch (const std::exception& e) {
      usage(std::string("--restore: ") + e.what());
    }
    std::cerr << "# restored from " << opts.restore_path << " (seq "
              << opts.restore_snapshot->seq << ", "
              << opts.restore_snapshot->lines_consumed
              << " lines already consumed)\n";
  }

  int status = 0;
  if (!opts.socket_path.empty()) {
    status = serve_socket(opts, daemon);
  } else {
    serve::FdLineSource source(STDIN_FILENO, &g_stop);
    const serve::DaemonStats stats = daemon.run(source, std::cout);
    emit_summary(stats);
  }

  if (!opts.metrics_json.empty()) {
    std::ofstream out(opts.metrics_json);
    if (!out) usage("cannot open " + opts.metrics_json);
    obs::Registry::global().write_json(out);
  }
  return status;
}
