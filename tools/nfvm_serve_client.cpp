// nfvm_serve_client - trace generator and replay client for nfvm-serve.
//
//   nfvm-serve-client [options]
//     --topology <waxman|transit-stub|geant|as1755|as4755>   (default waxman)
//     --nodes <n>            switches for generated topologies (default 100)
//     --seed <s>             RNG seed; MUST match the daemon's --seed and
//                            --topology/--nodes so request vertices are valid
//     --requests <r>         arrivals to generate (default 1000)
//     --arrival-rate <x>     Poisson arrival rate (default 1.0)
//     --mean-duration <x>    mean exponential holding time (default 20.0)
//     --diurnal-amplitude <a>  rate modulation in [0,1) (default 0)
//     --diurnal-period <p>   modulation period (default 86400)
//     --dest-ratio <x>       fix Dmax/|V| (default: U[0.05, 0.2])
//     --max-delay <ms>       per-request delay bound (daemon needs the same
//                            flag so link delays exist)
//     --snapshot-cmd-every <n>  interleave a {"cmd":"snapshot"} line after
//                            every n arrivals (0 = none)
//     --final-stats          end the trace with {"cmd":"stats"} (off for
//                            byte-equivalence gates: its reply carries
//                            timing quantiles)
//     --out <file>           write the trace to a file (default stdout)
//     --input <file>         replay an existing trace file instead of
//                            generating one (requires --connect)
//     --connect <socket>     replay the trace over a daemon's Unix socket and
//                            print the reply stream to stdout
//
// Without --connect the tool emits the trace (arrive/depart command lines in
// simulated-time order, a depart for every arrival) for piping into
// `nfvm-serve` or saving as a fixture. With --connect it streams the trace to
// a live daemon and relays the replies, exiting non-zero if the daemon hangs
// up before answering every line it consumed.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "serve/trace_gen.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"
#include "topology/transit_stub.h"
#include "topology/waxman.h"

namespace {

using namespace nfvm;

constexpr const char* kTopologies = "waxman|transit-stub|geant|as1755|as4755";

struct Options {
  std::string topology = "waxman";
  std::size_t nodes = 100;
  std::uint64_t seed = 1;
  std::size_t requests = 1000;
  double arrival_rate = 1.0;
  double mean_duration = 20.0;
  double diurnal_amplitude = 0.0;
  double diurnal_period = 86'400.0;
  double dest_ratio = 0.0;  // 0 = paper default range
  double max_delay_ms = 0.0;
  std::size_t snapshot_cmd_every = 0;
  bool final_stats = false;
  std::string out_path;
  std::string input_path;
  std::string connect_path;
};

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: nfvm-serve-client [--topology T] [--nodes N] [--seed S]\n"
               "                         [--requests R] [--arrival-rate X] [--mean-duration X]\n"
               "                         [--diurnal-amplitude A] [--diurnal-period P]\n"
               "                         [--dest-ratio X] [--max-delay MS]\n"
               "                         [--snapshot-cmd-every N] [--final-stats]\n"
               "                         [--out FILE] [--input FILE] [--connect SOCKET]\n"
               "  topologies: " << kTopologies << "\n";
  std::exit(error.empty() ? 0 : 2);
}

bool one_of(const std::string& value, std::initializer_list<const char*> accepted) {
  for (const char* a : accepted) {
    if (value == a) return true;
  }
  return false;
}

void validate_options(const Options& opts) {
  if (!one_of(opts.topology, {"waxman", "transit-stub", "geant", "as1755", "as4755"})) {
    usage("--topology must be one of " + std::string(kTopologies) + " (got \"" +
          opts.topology + "\")");
  }
  if (opts.diurnal_amplitude < 0.0 || opts.diurnal_amplitude >= 1.0) {
    usage("--diurnal-amplitude must be in [0, 1)");
  }
  if (!(opts.arrival_rate > 0.0)) usage("--arrival-rate must be positive");
  if (!(opts.mean_duration > 0.0)) usage("--mean-duration must be positive");
  if (!(opts.diurnal_period > 0.0)) usage("--diurnal-period must be positive");
  if (!opts.input_path.empty()) {
    if (opts.connect_path.empty()) {
      usage("--input replays an existing trace; it needs --connect "
            "(to emit a trace, use --out)");
    }
    std::ifstream probe(opts.input_path);
    if (!probe) usage("--input: cannot read \"" + opts.input_path + "\"");
  }
  if (!opts.out_path.empty() && !opts.connect_path.empty()) {
    usage("--out and --connect are mutually exclusive (replies go to stdout)");
  }
}

Options parse_args(int argc, char** argv) {
  Options opts;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage("");
    else if (arg == "--topology") opts.topology = need_value(i);
    else if (arg == "--nodes") opts.nodes = std::stoul(need_value(i));
    else if (arg == "--seed") opts.seed = std::stoull(need_value(i));
    else if (arg == "--requests") opts.requests = std::stoul(need_value(i));
    else if (arg == "--arrival-rate") opts.arrival_rate = std::stod(need_value(i));
    else if (arg == "--mean-duration") opts.mean_duration = std::stod(need_value(i));
    else if (arg == "--diurnal-amplitude") opts.diurnal_amplitude = std::stod(need_value(i));
    else if (arg == "--diurnal-period") opts.diurnal_period = std::stod(need_value(i));
    else if (arg == "--dest-ratio") opts.dest_ratio = std::stod(need_value(i));
    else if (arg == "--max-delay") opts.max_delay_ms = std::stod(need_value(i));
    else if (arg == "--snapshot-cmd-every") opts.snapshot_cmd_every = std::stoul(need_value(i));
    else if (arg == "--final-stats") opts.final_stats = true;
    else if (arg == "--out") opts.out_path = need_value(i);
    else if (arg == "--input") opts.input_path = need_value(i);
    else if (arg == "--connect") opts.connect_path = need_value(i);
    else usage("unknown option " + arg);
  }
  validate_options(opts);
  return opts;
}

topo::Topology build_topology(const Options& opts, util::Rng& rng) {
  if (opts.topology == "waxman") {
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    return topo::make_waxman(opts.nodes, rng, wo);
  }
  if (opts.topology == "transit-stub") return topo::make_transit_stub(opts.nodes, rng);
  if (opts.topology == "geant") return topo::make_geant(rng);
  if (opts.topology == "as1755") return topo::make_as1755(rng);
  return topo::make_as4755(rng);  // validated at parse time
}

std::string make_trace(const Options& opts) {
  // Mirror nfvm-serve's topology construction exactly (including the delay
  // assignment draw) so generated vertex ids are valid on the daemon side.
  util::Rng rng(opts.seed);
  topo::Topology topo = build_topology(opts, rng);
  if (opts.max_delay_ms > 0) topo::assign_delays(topo, rng);

  serve::TraceGenOptions trace;
  trace.num_requests = opts.requests;
  trace.arrival_rate = opts.arrival_rate;
  trace.mean_duration = opts.mean_duration;
  trace.diurnal_amplitude = opts.diurnal_amplitude;
  trace.diurnal_period = opts.diurnal_period;
  trace.max_delay_ms = opts.max_delay_ms;
  trace.snapshot_every = opts.snapshot_cmd_every;
  trace.final_stats = opts.final_stats;
  if (opts.dest_ratio > 0) {
    trace.request_gen.min_dest_ratio = opts.dest_ratio;
    trace.request_gen.max_dest_ratio = opts.dest_ratio;
  }
  util::Rng workload(opts.seed + 1);
  std::ostringstream out;
  const serve::TraceSummary summary =
      serve::write_serve_trace(out, topo, workload, trace);
  std::cerr << "# trace: " << summary.arrive_lines << " arrive, "
            << summary.depart_lines << " depart, " << summary.snapshot_lines
            << " snapshot, " << summary.total_lines << " lines\n";
  return out.str();
}

/// Streams `trace` to the daemon socket from a writer thread (half-closing
/// when done) while the main thread relays replies to stdout until the
/// daemon hangs up.
int replay(const Options& opts, const std::string& trace) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) usage(std::string("--connect: socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts.connect_path.size() >= sizeof(addr.sun_path)) {
    usage("--connect: path too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, opts.connect_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    usage("--connect: cannot connect to \"" + opts.connect_path + "\": " +
          std::strerror(errno));
  }

  std::thread writer([&] {
    std::size_t done = 0;
    while (done < trace.size()) {
      const ssize_t n = ::send(fd, trace.data() + done, trace.size() - done,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // daemon gone; the reader will see EOF
      }
      done += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
  });

  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    std::cout.write(chunk, n);
  }
  std::cout.flush();
  writer.join();
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  ::signal(SIGPIPE, SIG_IGN);

  std::string trace;
  if (!opts.input_path.empty()) {
    std::ifstream in(opts.input_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    trace = buffer.str();
  } else {
    trace = make_trace(opts);
  }

  if (!opts.connect_path.empty()) return replay(opts, trace);

  if (opts.out_path.empty()) {
    std::cout << trace;
    std::cout.flush();
    return 0;
  }
  std::ofstream out(opts.out_path, std::ios::binary);
  if (!out) usage("cannot open " + opts.out_path);
  out << trace;
  return 0;
}
