// nfvm_sim - command-line online-admission simulator.
//
//   nfvm_sim [options]
//     --topology <waxman|transit-stub|geant|as1755|as4755>   (default waxman)
//     --nodes <n>            switches for generated topologies (default 100)
//     --seed <s>             RNG seed for topology + workload (default 1)
//     --mode <online|offline>                                (default online)
//     --algorithm <online_cp|online_sp|online_sp_static|all> (online mode)
//     --requests <r>         arrivals (default 300)
//     --dest-ratio <x>       fix Dmax/|V| (default: U[0.05, 0.2])
//     --max-delay <ms>       delay bound per request (assigns link delays)
//     --dynamic              Poisson arrivals + exponential holding times
//     --arrival-rate <x>     (dynamic/soak, default 1.0)
//     --mean-duration <x>    (dynamic/soak, default 20.0)
//     --soak <n>             sustained-load run: stream n Poisson arrivals +
//                            departures through one algorithm without
//                            materializing the workload (requires a single
//                            --algorithm); reports sustained req/s and
//                            whole-run latency quantiles
//     --diurnal-amplitude <a>  soak arrival-rate modulation in [0,1):
//                            rate(t) = rate*(1 + a*sin(2*pi*t/period))
//     --diurnal-period <p>   soak modulation period in sim-time units
//                            (default 86400)
//     --threads <n>          worker threads for the parallel fan-outs (APSP,
//                            Steiner SSSP, Appro_Multi combinations, offline
//                            batches). Default: NFVM_THREADS env var, else 1.
//                            Results are bit-identical for any thread count.
//     --beam-width <m>       offline mode: restrict Appro_Multi to the m most
//                            central eligible servers (0 = exact, default)
//     --dump-topology <file> write the topology in nfvm-topology format
//     --dump-dot <file>      write a Graphviz rendering of the topology
//   Observability (see docs/observability.md):
//     --metrics-json <file>  dump the metrics registry (counters/gauges/
//                            histograms) as JSON at exit; "-" writes to stdout
//     --trace <file>         record tracing spans; Chrome trace_event JSON,
//                            loadable in chrome://tracing or Perfetto
//     --events <file>        JSONL event log ("nfvm-events-v2"), one line per
//                            processed request, stamped with the config hash
//                            and seed and carrying full decision provenance
//                            (phase timings, scan counts, reject context);
//                            "-" writes to stdout
//     --log-level <level>    error|warn|info|debug (default warn)
//     --run-dir <dir>        write a self-describing artifact bundle:
//                            manifest.json (argv, config, build provenance,
//                            timings, peak RSS) plus metrics.json /
//                            events.jsonl / trace.json defaults
//     --timeseries <file>    periodic JSONL snapshots of the registry + RSS
//                            ("nfvm-timeseries-v2": counters, gauges, windowed
//                            quantiles, per-interval rates) from a background
//                            sampler thread
//     --sample-interval-ms <n>  sampler period (default 1000)
//     --slo <file>           declarative SLO spec (one objective per line,
//                            see docs/observability.md); evaluated on the
//                            sampler tick, breaches recorded in the event
//                            log, verdict in manifest.json
//     --slo-out <file>       write the "nfvm-slo-v1" outcome document
//                            (default <run-dir>/slo.json, else stdout);
//                            consumed by `nfvm-report slo [--check]`
//
// Prints one metrics row per algorithm; online rows include the
// rejection-cause breakdown (rej_bw/rej_cpu/rej_thr/rej_dly/rej_other).
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "core/chain_split.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "io/dot.h"
#include "io/serialize.h"
#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_events.h"
#include "obs/run_info.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "sim/offline_batch.h"
#include "sim/simulator.h"
#include "sim/soak.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"
#include "topology/transit_stub.h"
#include "topology/waxman.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace nfvm;

constexpr const char* kModes = "online|offline";
constexpr const char* kTopologies = "waxman|transit-stub|geant|as1755|as4755";
constexpr const char* kAlgorithms = "online_cp|online_sp|online_sp_static|all";
constexpr const char* kLogLevels = "error|warn|info|debug";

/// Soak-mode graceful shutdown: SIGINT/SIGTERM stop the arrival loop at the
/// next iteration, so the run still flushes its partial artifacts (manifest,
/// metrics, timeseries) instead of dying with a torn bundle.
std::atomic<bool> g_soak_stop{false};

void on_soak_signal(int) { g_soak_stop.store(true, std::memory_order_relaxed); }

struct Options {
  std::string mode = "online";
  std::string topology = "waxman";
  std::size_t nodes = 100;
  std::uint64_t seed = 1;
  std::string algorithm = "all";
  std::size_t requests = 300;
  double dest_ratio = 0.0;  // 0 = paper default range
  double max_delay_ms = 0.0;  // 0 = unconstrained
  bool dynamic = false;
  /// Online: run Online_CP / Online_SP with incremental_view off
  /// (per-request rebuild). Offline: run Appro_Multi with the legacy
  /// materialize-everything combination sweep instead of branch-and-bound.
  /// Decisions must be byte-identical to the default fast path — CI diffs
  /// the two decision streams in both modes.
  bool legacy_path = false;
  /// Offline: Appro_Multi beam width (0 = exact full server pool).
  std::size_t beam_width = 0;
  double arrival_rate = 1.0;
  double mean_duration = 20.0;
  std::size_t soak = 0;  // 0 = not a soak run
  double diurnal_amplitude = 0.0;
  double diurnal_period = 86'400.0;
  std::size_t threads = 0;  // 0 = keep the NFVM_THREADS / default sizing
  std::string dump_topology;
  std::string dump_dot;
  std::string metrics_json;
  std::string trace_file;
  std::string events_file;
  std::string run_dir;
  std::string timeseries_file;
  long sample_interval_ms = 1000;
  std::string slo_file;
  std::string slo_out;
  /// Parsed eagerly from slo_file so a malformed spec fails at startup.
  std::vector<obs::SloSpec> slo_specs;
};

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: nfvm_sim [--mode " << kModes << "] [--topology T] [--nodes N] [--seed S]\n"
               "                [--algorithm A] [--requests R] [--dest-ratio X]\n"
               "                [--max-delay MS] [--dynamic] [--legacy-path]\n"
               "                [--arrival-rate X] [--mean-duration X]\n"
               "                [--soak N] [--diurnal-amplitude A] [--diurnal-period P]\n"
               "                [--threads N] [--beam-width M]\n"
               "                [--dump-topology FILE] [--dump-dot FILE]\n"
               "                [--metrics-json FILE|-] [--trace FILE] [--events FILE|-]\n"
               "                [--run-dir DIR] [--timeseries FILE] [--sample-interval-ms N]\n"
               "                [--slo FILE] [--slo-out FILE]\n"
               "                [--log-level " << kLogLevels << "]\n"
               "  topologies: " << kTopologies << "\n"
               "  algorithms: " << kAlgorithms << "\n";
  std::exit(error.empty() ? 0 : 2);
}

bool one_of(const std::string& value, std::initializer_list<const char*> accepted) {
  for (const char* a : accepted) {
    if (value == a) return true;
  }
  return false;
}

/// Eagerly proves an output path is writable (open-for-append creates the
/// file without truncating existing content). A typo'd --trace path must
/// fail here, not after the whole run has finished.
void validate_writable(const char* flag, const std::string& path) {
  if (path.empty() || path == "-") return;
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    usage(std::string(flag) + ": cannot open \"" + path + "\" for writing");
  }
}

/// Rejects bad enumeration values and unwritable artifact paths at parse
/// time - a typo in --algorithm or --trace must not surface as a mid-run (or
/// end-of-run) failure after topology generation.
void validate_options(Options& opts) {
  if (!one_of(opts.mode, {"online", "offline"})) {
    usage("--mode must be one of " + std::string(kModes) + " (got \"" +
          opts.mode + "\")");
  }
  if (!one_of(opts.topology, {"waxman", "transit-stub", "geant", "as1755", "as4755"})) {
    usage("--topology must be one of " + std::string(kTopologies) + " (got \"" +
          opts.topology + "\")");
  }
  if (!one_of(opts.algorithm, {"online_cp", "online_sp", "online_sp_static", "all"})) {
    usage("--algorithm must be one of " + std::string(kAlgorithms) + " (got \"" +
          opts.algorithm + "\")");
  }
  if (opts.sample_interval_ms <= 0) {
    usage("--sample-interval-ms must be positive");
  }
  if (opts.beam_width > 0 && opts.mode != "offline") {
    usage("--beam-width only applies to --mode offline");
  }
  if (opts.soak > 0) {
    if (opts.mode != "online") usage("--soak requires --mode online");
    if (opts.algorithm == "all") {
      usage("--soak streams one algorithm's telemetry; pick a single "
            "--algorithm (e.g. online_cp)");
    }
    if (opts.dynamic) usage("--soak already implies a dynamic workload; drop --dynamic");
  }
  if (opts.diurnal_amplitude < 0.0 || opts.diurnal_amplitude >= 1.0) {
    usage("--diurnal-amplitude must be in [0, 1)");
  }
  if (!(opts.diurnal_period > 0.0)) {
    usage("--diurnal-period must be positive");
  }
  if (!opts.slo_file.empty()) {
    std::ifstream in(opts.slo_file);
    if (!in) usage("--slo: cannot read \"" + opts.slo_file + "\"");
    std::ostringstream text;
    text << in.rdbuf();
    try {
      opts.slo_specs = obs::parse_slo_specs(text.str());
    } catch (const std::invalid_argument& e) {
      usage("--slo " + opts.slo_file + ": " + e.what());
    }
    if (opts.slo_specs.empty()) {
      usage("--slo " + opts.slo_file + ": no objectives found");
    }
  }
  if (!opts.run_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.run_dir, ec);
    if (ec) usage("--run-dir: cannot create \"" + opts.run_dir + "\": " + ec.message());
    // The bundle always carries the standard artifacts; explicit flags
    // override the destination of an individual one.
    const auto in_dir = [&](const char* name) {
      return (std::filesystem::path(opts.run_dir) / name).string();
    };
    if (opts.metrics_json.empty()) opts.metrics_json = in_dir("metrics.json");
    if (opts.events_file.empty()) opts.events_file = in_dir("events.jsonl");
    if (opts.trace_file.empty()) opts.trace_file = in_dir("trace.json");
    if (!opts.slo_file.empty() && opts.slo_out.empty()) {
      opts.slo_out = in_dir("slo.json");
    }
  }
  // Two JSON artifacts interleaved on one stream are unparseable; catch the
  // conflict at parse time, not after the run.
  if (opts.events_file == "-" && opts.metrics_json == "-") {
    usage("--events and --metrics-json cannot both write to stdout (\"-\")");
  }
  // "-" (stdout) is supported for the line- and object-oriented artifacts
  // only; a Chrome trace or dot dump interleaved with the table is useless.
  for (const auto& [flag, path] :
       {std::pair<const char*, const std::string&>{"--trace", opts.trace_file},
        {"--dump-topology", opts.dump_topology},
        {"--dump-dot", opts.dump_dot},
        {"--timeseries", opts.timeseries_file}}) {
    if (path == "-") usage(std::string(flag) + " does not support \"-\" (stdout)");
  }
  validate_writable("--dump-topology", opts.dump_topology);
  validate_writable("--dump-dot", opts.dump_dot);
  validate_writable("--metrics-json", opts.metrics_json);
  validate_writable("--trace", opts.trace_file);
  validate_writable("--events", opts.events_file);
  validate_writable("--timeseries", opts.timeseries_file);
  if (opts.slo_out == "-") usage("--slo-out does not support \"-\" (stdout is the default)");
  validate_writable("--slo-out", opts.slo_out);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage("");
    else if (arg == "--mode") opts.mode = need_value(i);
    else if (arg == "--topology") opts.topology = need_value(i);
    else if (arg == "--nodes") opts.nodes = std::stoul(need_value(i));
    else if (arg == "--seed") opts.seed = std::stoull(need_value(i));
    else if (arg == "--algorithm") opts.algorithm = need_value(i);
    else if (arg == "--requests") opts.requests = std::stoul(need_value(i));
    else if (arg == "--dest-ratio") opts.dest_ratio = std::stod(need_value(i));
    else if (arg == "--max-delay") opts.max_delay_ms = std::stod(need_value(i));
    else if (arg == "--dynamic") opts.dynamic = true;
    else if (arg == "--legacy-path") opts.legacy_path = true;
    else if (arg == "--arrival-rate") opts.arrival_rate = std::stod(need_value(i));
    else if (arg == "--mean-duration") opts.mean_duration = std::stod(need_value(i));
    else if (arg == "--soak") opts.soak = std::stoul(need_value(i));
    else if (arg == "--diurnal-amplitude") opts.diurnal_amplitude = std::stod(need_value(i));
    else if (arg == "--diurnal-period") opts.diurnal_period = std::stod(need_value(i));
    else if (arg == "--threads") opts.threads = std::stoul(need_value(i));
    else if (arg == "--beam-width") opts.beam_width = std::stoul(need_value(i));
    else if (arg == "--dump-topology") opts.dump_topology = need_value(i);
    else if (arg == "--dump-dot") opts.dump_dot = need_value(i);
    else if (arg == "--metrics-json") opts.metrics_json = need_value(i);
    else if (arg == "--trace") opts.trace_file = need_value(i);
    else if (arg == "--events") opts.events_file = need_value(i);
    else if (arg == "--run-dir") opts.run_dir = need_value(i);
    else if (arg == "--timeseries") opts.timeseries_file = need_value(i);
    else if (arg == "--sample-interval-ms") opts.sample_interval_ms = std::stol(need_value(i));
    else if (arg == "--slo") opts.slo_file = need_value(i);
    else if (arg == "--slo-out") opts.slo_out = need_value(i);
    else if (arg == "--log-level") {
      const std::string value = need_value(i);
      const auto level = obs::parse_log_level(value);
      if (!level.has_value()) {
        usage("--log-level must be one of " + std::string(kLogLevels) +
              " (got \"" + value + "\")");
      }
      obs::set_log_level(*level);
    }
    else usage("unknown option " + arg);
  }
  validate_options(opts);
  return opts;
}

topo::Topology build_topology(const Options& opts, util::Rng& rng) {
  if (opts.topology == "waxman") {
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    return topo::make_waxman(opts.nodes, rng, wo);
  }
  if (opts.topology == "transit-stub") return topo::make_transit_stub(opts.nodes, rng);
  if (opts.topology == "geant") return topo::make_geant(rng);
  if (opts.topology == "as1755") return topo::make_as1755(rng);
  return topo::make_as4755(rng);  // validated at parse time
}

std::unique_ptr<core::OnlineAlgorithm> build_algorithm(const std::string& name,
                                                       const topo::Topology& topo,
                                                       bool legacy_path) {
  if (name == "online_cp") {
    core::OnlineCpOptions cp_opts;
    cp_opts.incremental_view = !legacy_path;
    return std::make_unique<core::OnlineCp>(topo, cp_opts);
  }
  if (name == "online_sp") {
    core::OnlineSpOptions sp_opts;
    sp_opts.incremental_view = !legacy_path;
    return std::make_unique<core::OnlineSp>(topo, sp_opts);
  }
  return std::make_unique<core::OnlineSpStatic>(topo);  // validated at parse time
}

/// Context for the end-of-run artifact flush: everything write_artifacts
/// needs beyond the options (sampler thread, manifest bookkeeping).
struct RunContext {
  obs::TimeseriesSampler sampler;
  /// Present iff --slo was given; the sampler tick drives it.
  std::unique_ptr<obs::SloTracker> slo;
  std::vector<std::string> argv;
  std::string start_time;
  std::string config_hash;
  util::Stopwatch wall;
  /// False when a signal cut a soak run short (recorded in the manifest so
  /// consumers know the bundle covers fewer arrivals than configured).
  bool clean_shutdown = true;
};

/// Config echo recorded in manifest.json so a bundle is reproducible from
/// its manifest alone (the full argv is also stored verbatim).
std::map<std::string, std::string> manifest_config(const Options& opts) {
  std::map<std::string, std::string> config;
  config["mode"] = opts.mode;
  config["topology"] = opts.topology;
  config["nodes"] = std::to_string(opts.nodes);
  config["seed"] = std::to_string(opts.seed);
  config["algorithm"] = opts.algorithm;
  config["requests"] = std::to_string(opts.requests);
  config["dest_ratio"] = util::format_double(opts.dest_ratio, 4);
  config["max_delay_ms"] = util::format_double(opts.max_delay_ms, 3);
  config["dynamic"] = opts.dynamic ? "true" : "false";
  config["legacy_path"] = opts.legacy_path ? "true" : "false";
  if (opts.mode == "offline") {
    config["beam_width"] = std::to_string(opts.beam_width);
  }
  if (opts.dynamic || opts.soak > 0) {
    config["arrival_rate"] = util::format_double(opts.arrival_rate, 4);
    config["mean_duration"] = util::format_double(opts.mean_duration, 4);
  }
  if (opts.soak > 0) {
    config["soak"] = std::to_string(opts.soak);
    config["diurnal_amplitude"] = util::format_double(opts.diurnal_amplitude, 4);
    config["diurnal_period"] = util::format_double(opts.diurnal_period, 4);
  }
  if (!opts.slo_file.empty()) config["slo"] = opts.slo_file;
  config["threads"] = std::to_string(util::ThreadPool::global().num_threads());
  return config;
}

/// Digest of the manifest config echo. Stamped into every event-log line and
/// the manifest, so logs from different runs cannot be mixed up silently.
/// Call after the thread pool is sized (the echo records the thread count).
std::string config_digest(const Options& opts) {
  std::string text;
  for (const auto& [key, value] : manifest_config(opts)) {
    text += key;
    text += '=';
    text += value;
    text += ';';
  }
  return obs::config_hash_hex(text);
}

/// Flushes the requested artifacts at the end of the run (and on the offline
/// early-return path): sampler shutdown, trace/metrics dumps, and the
/// run-dir manifest.
void write_artifacts(const Options& opts, const obs::EventLog& events,
                     RunContext& ctx) {
  ctx.sampler.stop();  // also finishes the SLO tracker (final partial window)
  if (!opts.timeseries_file.empty()) {
    obs::log_info(std::to_string(ctx.sampler.samples_written()) +
                  " timeseries samples written to " + opts.timeseries_file);
  }
  if (ctx.slo) {
    if (opts.slo_out.empty()) {
      ctx.slo->write_json(std::cout);
    } else {
      std::ofstream out(opts.slo_out);
      if (!out) usage("cannot open " + opts.slo_out);
      ctx.slo->write_json(out);
      obs::log_info("slo outcome written to " + opts.slo_out);
    }
    if (!ctx.slo->pass()) {
      std::cerr << "# SLO BREACH: " << ctx.slo->num_breached_windows()
                << " bad window(s); see `nfvm-report slo`\n";
    }
  }
  if (!opts.trace_file.empty()) {
    obs::Tracer::global().stop();
    std::ofstream out(opts.trace_file);
    if (!out) usage("cannot open " + opts.trace_file);
    obs::Tracer::global().write_chrome_trace(out);
    obs::log_info("trace written to " + opts.trace_file);
  }
  if (!opts.metrics_json.empty()) {
    if (opts.metrics_json == "-") {
      obs::Registry::global().write_json(std::cout);
    } else {
      std::ofstream out(opts.metrics_json);
      if (!out) usage("cannot open " + opts.metrics_json);
      obs::Registry::global().write_json(out);
      obs::log_info("metrics written to " + opts.metrics_json);
    }
  }
  if (!opts.events_file.empty()) {
    obs::log_info(std::to_string(events.lines_written()) +
                  " events written to " + opts.events_file);
  }
  if (!opts.run_dir.empty()) {
    obs::RunManifest manifest;
    manifest.argv = ctx.argv;
    manifest.start_time = ctx.start_time;
    manifest.end_time = obs::iso8601_utc_now();
    manifest.wall_time_s = ctx.wall.elapsed_seconds();
    manifest.config = manifest_config(opts);
    manifest.config["config_hash"] = ctx.config_hash;
    if (opts.soak > 0) {
      manifest.config["clean_shutdown"] = ctx.clean_shutdown ? "true" : "false";
    }
    // The SLO verdict rides in the manifest so a bundle answers "did this
    // run meet its objectives" without opening slo.json.
    if (ctx.slo) manifest.config["slo_pass"] = ctx.slo->pass() ? "true" : "false";
    for (const auto& [flag, path] :
         {std::pair<const char*, const std::string&>{"metrics", opts.metrics_json},
          {"events", opts.events_file},
          {"trace", opts.trace_file},
          {"timeseries", opts.timeseries_file},
          {"slo", opts.slo_out}}) {
      (void)flag;
      if (path.empty() || path == "-") continue;
      manifest.artifacts.push_back(std::filesystem::path(path).filename().string());
    }
    const std::string manifest_path =
        (std::filesystem::path(opts.run_dir) / "manifest.json").string();
    std::ofstream out(manifest_path);
    if (!out) usage("cannot open " + manifest_path);
    obs::write_manifest(out, manifest);
    obs::log_info("manifest written to " + manifest_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  if (opts.threads > 0) util::ThreadPool::set_global_threads(opts.threads);

  RunContext ctx;
  ctx.argv.assign(argv, argv + argc);
  ctx.start_time = obs::iso8601_utc_now();
  ctx.config_hash = config_digest(opts);

  if (!opts.trace_file.empty()) obs::Tracer::global().start();
  obs::EventLog events;
  if (!opts.events_file.empty()) {
    if (!events.open(opts.events_file)) usage("cannot open " + opts.events_file);
    obs::JsonLine stamp;
    stamp.field("schema", obs::report::kEventsSchema)
        .field("config_hash", ctx.config_hash)
        .field("seed", opts.seed);
    events.set_stamp(stamp);
  }
  if (!opts.slo_specs.empty()) {
    ctx.slo = std::make_unique<obs::SloTracker>(opts.slo_specs);
    if (events.is_open()) ctx.slo->set_event_log(&events);
    ctx.sampler.set_slo_tracker(ctx.slo.get());
  }
  // The sampler runs with a file (--timeseries) or without one (--slo only:
  // its tick still drives SLO evaluation).
  if ((!opts.timeseries_file.empty() || ctx.slo != nullptr) &&
      !ctx.sampler.start(obs::Registry::global(), opts.timeseries_file,
                         std::chrono::milliseconds(opts.sample_interval_ms))) {
    usage("cannot open " + opts.timeseries_file);
  }

  util::Rng rng(opts.seed);
  topo::Topology topo = build_topology(opts, rng);
  if (opts.max_delay_ms > 0) topo::assign_delays(topo, rng);
  std::cout << "# topology " << topo.name << ": " << topo.num_switches()
            << " switches, " << topo.num_links() << " links, "
            << topo.servers.size() << " servers\n";

  if (!opts.dump_topology.empty()) {
    std::ofstream out(opts.dump_topology);
    if (!out) usage("cannot open " + opts.dump_topology);
    io::write_topology(out, topo);
    std::cout << "# topology written to " << opts.dump_topology << "\n";
  }
  if (!opts.dump_dot.empty()) {
    std::ofstream out(opts.dump_dot);
    if (!out) usage("cannot open " + opts.dump_dot);
    out << io::to_dot(topo);
    std::cout << "# dot written to " << opts.dump_dot << "\n";
  }

  sim::RequestGenOptions gen_opts;
  if (opts.dest_ratio > 0) {
    gen_opts.min_dest_ratio = opts.dest_ratio;
    gen_opts.max_dest_ratio = opts.dest_ratio;
  }

  if (opts.mode == "offline") {
    // Offline single-request comparison: Appro_Multi (K=1..3), the
    // one-server baseline and the chain-split extension, averaged over the
    // request batch on the uncapacitated network.
    util::RunningStats k1, k2, k3, one, split;
    {
      // The span must close before write_artifacts stops the tracer, or it
      // would be dropped from the exported trace.
      NFVM_SPAN("cli/offline_batch");
      util::Rng costs_rng(opts.seed + 2);
      const core::LinearCosts costs = core::random_costs(topo, costs_rng);
      util::Rng workload(opts.seed + 1);
      sim::RequestGenerator gen(topo, workload, gen_opts);
      const std::size_t batch = std::min<std::size_t>(opts.requests, 100);
      obs::log_info("offline batch: " + std::to_string(batch) + " requests on " +
                    topo.name);
      std::vector<nfv::Request> batch_requests;
      batch_requests.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        nfv::Request r = gen.next();
        r.max_delay_ms = opts.max_delay_ms;
        batch_requests.push_back(std::move(r));
      }
      // Requests fan out across the thread pool; aggregation below walks the
      // indexed results in request order, so stats match a serial run.
      sim::OfflineBatchOptions batch_opts;
      batch_opts.search = opts.legacy_path
                              ? core::ApproMultiOptions::Search::kLegacySweep
                              : core::ApproMultiOptions::Search::kBranchAndBound;
      batch_opts.beam_width = opts.beam_width;
      const auto results =
          sim::run_offline_batch(topo, costs, batch_requests, batch_opts);
      for (const sim::OfflineRequestResult& res : results) {
        for (std::size_t k = 1; k <= 3; ++k) {
          const core::OfflineSolution& sol = res.appro_multi[k - 1];
          if (!sol.admitted) continue;
          (k == 1 ? k1 : k == 2 ? k2 : k3).add(sol.tree.cost);
        }
        if (res.one_server.admitted) one.add(res.one_server.tree.cost);
        if (res.chain_split.admitted) split.add(res.chain_split.tree.cost);
      }
    }
    util::Table offline_table({"algorithm", "admitted", "mean_cost"});
    offline_table.begin_row().add("appro_multi_K1").add(k1.count()).add(k1.mean(), 3);
    offline_table.begin_row().add("appro_multi_K2").add(k2.count()).add(k2.mean(), 3);
    offline_table.begin_row().add("appro_multi_K3").add(k3.count()).add(k3.mean(), 3);
    offline_table.begin_row().add("alg_one_server").add(one.count()).add(one.mean(), 3);
    offline_table.begin_row().add("chain_split").add(split.count()).add(split.mean(), 3);
    offline_table.print(std::cout);
    write_artifacts(opts, events, ctx);
    return 0;
  }

  std::vector<std::string> algorithms;
  if (opts.algorithm == "all") {
    algorithms = {"online_cp", "online_sp", "online_sp_static"};
  } else {
    algorithms = {opts.algorithm};
  }

  sim::SimulatorOptions sim_opts;
  sim_opts.event_log = events.is_open() ? &events : nullptr;
  // Provenance recording is tied to the event log: the fields only leave the
  // process through it, and it never changes any decision.
  sim_opts.record_provenance = events.is_open();

  if (opts.soak > 0) {
    util::Rng workload(opts.seed + 1);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    auto algo = build_algorithm(opts.algorithm, topo, opts.legacy_path);
    sim::SoakOptions soak;
    soak.num_requests = opts.soak;
    soak.arrival_rate = opts.arrival_rate;
    soak.mean_duration = opts.mean_duration;
    soak.diurnal_amplitude = opts.diurnal_amplitude;
    soak.diurnal_period = opts.diurnal_period;
    soak.max_delay_ms = opts.max_delay_ms;
    soak.stop = &g_soak_stop;
    struct sigaction action{};
    action.sa_handler = on_soak_signal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    soak.sim = sim_opts;
    // Progress heartbeat at ~5% granularity (info level) so multi-hour
    // soaks are observably alive from the console too.
    soak.progress_every = std::max<std::size_t>(opts.soak / 20, 1);
    soak.on_progress = [&](std::size_t processed) {
      obs::log_info("soak: " + std::to_string(processed) + "/" +
                    std::to_string(opts.soak) + " requests");
    };
    obs::log_info("soak run: " + std::string(algo->name()) + ", " +
                  std::to_string(opts.soak) + " requests");
    const sim::SoakMetrics m = sim::run_soak(*algo, gen, workload, soak);
    ctx.clean_shutdown = m.clean_shutdown;
    if (!m.clean_shutdown) {
      std::cerr << "# soak interrupted by signal after " << m.num_requests
                << " requests; flushing partial artifacts\n";
    }
    util::Table soak_table({"algorithm", "requests", "admitted", "acceptance",
                            "rej_bw", "rej_cpu", "rej_thr", "rej_dly",
                            "rej_other", "peak_active", "wall_s", "req_s",
                            "p50_us", "p90_us", "p99_us"});
    soak_table.begin_row()
        .add(std::string(algo->name()))
        .add(m.num_requests)
        .add(m.num_admitted)
        .add(m.acceptance_ratio(), 3)
        .add(m.rejected_because(core::RejectCause::kBandwidth))
        .add(m.rejected_because(core::RejectCause::kCompute))
        .add(m.rejected_because(core::RejectCause::kThreshold))
        .add(m.rejected_because(core::RejectCause::kDelay))
        .add(m.rejected_because(core::RejectCause::kOther) +
             m.rejected_because(core::RejectCause::kNone))
        .add(m.peak_active)
        .add(m.wall_seconds, 1)
        .add(m.requests_per_s, 1)
        .add(m.p50_us, 1)
        .add(m.p90_us, 1)
        .add(m.p99_us, 1);
    soak_table.print(std::cout);
    write_artifacts(opts, events, ctx);
    return 0;
  }

  util::Table table({"algorithm", "requests", "admitted", "acceptance",
                     "mean_cost", "rej_bw", "rej_cpu", "rej_thr", "rej_dly",
                     "rej_other", "peak_active"});
  for (const std::string& name : algorithms) {
    // Fresh, identical workload per algorithm.
    util::Rng workload(opts.seed + 1);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    auto algo = build_algorithm(name, topo, opts.legacy_path);
    obs::log_info("admission run: " + std::string(algo->name()) + ", " +
                  std::to_string(opts.requests) + " requests");
    const auto reject_cells = [&table](const auto& m) {
      table.add(m.rejected_because(core::RejectCause::kBandwidth))
          .add(m.rejected_because(core::RejectCause::kCompute))
          .add(m.rejected_because(core::RejectCause::kThreshold))
          .add(m.rejected_because(core::RejectCause::kDelay))
          .add(m.rejected_because(core::RejectCause::kOther) +
               m.rejected_because(core::RejectCause::kNone));
    };
    if (opts.dynamic) {
      sim::DynamicWorkloadOptions dyn;
      dyn.arrival_rate = opts.arrival_rate;
      dyn.mean_duration = opts.mean_duration;
      auto requests = sim::make_poisson_workload(gen, workload, opts.requests, dyn);
      for (auto& tr : requests) tr.request.max_delay_ms = opts.max_delay_ms;
      const sim::DynamicMetrics m = sim::run_online_dynamic(*algo, requests, sim_opts);
      table.begin_row()
          .add(std::string(algo->name()))
          .add(m.num_requests)
          .add(m.num_admitted)
          .add(m.acceptance_ratio(), 3)
          .add(m.admitted_costs.empty() ? 0.0 : m.admitted_costs.mean(), 3);
      reject_cells(m);
      table.add(m.peak_active);
    } else {
      auto requests = gen.sequence(opts.requests);
      for (auto& r : requests) r.max_delay_ms = opts.max_delay_ms;
      const sim::SimulationMetrics m = sim::run_online(*algo, requests, sim_opts);
      table.begin_row()
          .add(std::string(algo->name()))
          .add(m.num_requests)
          .add(m.num_admitted)
          .add(m.acceptance_ratio(), 3)
          .add(m.admitted_costs.empty() ? 0.0 : m.admitted_costs.mean(), 3);
      reject_cells(m);
      table.add(std::string("-"));
    }
  }
  table.print(std::cout);
  write_artifacts(opts, events, ctx);
  return 0;
}
