#!/usr/bin/env bash
# Crash-recovery equivalence gate for nfvm-serve.
#
#   serve_crash_smoke.sh <nfvm-serve> <nfvm-serve-client> <workdir> [threads]
#
# 1. Generates a fixed-seed trace.
# 2. Runs it uninterrupted -> full.out (the reference reply stream).
# 3. Runs it again with periodic snapshots and kill -9's the daemon at a
#    random midpoint -> part1.out + the last atomic snapshot.
# 4. Restores from that snapshot and replays the same trace -> part2.out
#    (the daemon itself skips the consumed prefix).
# 5. Asserts head -n lines_consumed(part1) + part2 is byte-identical to the
#    uninterrupted run.
#
# The gate passes degenerately (empty part2) if the daemon finishes before
# the kill lands - the diff still proves snapshot/restore did no harm.
set -euo pipefail

SERVE=$1
CLIENT=$2
DIR=$3
THREADS=${4:-1}

rm -rf "$DIR"
mkdir -p "$DIR"

TOPO_ARGS=(--topology waxman --nodes 60 --seed 11)
SERVE_ARGS=("${TOPO_ARGS[@]}" --algorithm online_cp --threads "$THREADS")

"$CLIENT" "${TOPO_ARGS[@]}" --requests 1500 --arrival-rate 20 \
  --mean-duration 40 --out "$DIR/trace.jsonl" 2> "$DIR/client.err"
TRACE_LINES=$(wc -l < "$DIR/trace.jsonl")

# Reference: uninterrupted run.
"$SERVE" "${SERVE_ARGS[@]}" \
  < "$DIR/trace.jsonl" > "$DIR/full.out" 2> "$DIR/full.err"
FULL_LINES=$(wc -l < "$DIR/full.out")
if [ "$FULL_LINES" -ne "$TRACE_LINES" ]; then
  echo "FAIL: one-reply-per-line broken ($FULL_LINES replies for $TRACE_LINES lines)" >&2
  exit 1
fi

# Crash run: periodic snapshots, kill -9 once the reply stream passes a
# random midpoint (>= 200 so at least one periodic snapshot exists).
"$SERVE" "${SERVE_ARGS[@]}" --snapshot "$DIR/crash.snap" --snapshot-every 100 \
  < "$DIR/trace.jsonl" > "$DIR/part1.out" 2> "$DIR/crash.err" &
PID=$!
MID=$(( (RANDOM % 1000) + 200 ))
while kill -0 "$PID" 2>/dev/null; do
  LINES=$(wc -l < "$DIR/part1.out" 2>/dev/null || echo 0)
  if [ "$LINES" -ge "$MID" ]; then
    kill -9 "$PID" 2>/dev/null || true
    break
  fi
  sleep 0.02
done
wait "$PID" 2>/dev/null || true

if [ ! -s "$DIR/crash.snap" ]; then
  echo "FAIL: no snapshot survived the crash run" >&2
  exit 1
fi
M=$(grep -o '"lines_consumed":[0-9]*' "$DIR/crash.snap" | head -n 1 | cut -d: -f2)
PART1_LINES=$(wc -l < "$DIR/part1.out")
if [ -z "$M" ] || [ "$PART1_LINES" -lt "$M" ]; then
  echo "FAIL: snapshot cursor ($M) ran ahead of the flushed replies ($PART1_LINES)" >&2
  exit 1
fi

# Restore and replay the same trace; the daemon skips the consumed prefix.
"$SERVE" "${SERVE_ARGS[@]}" --restore "$DIR/crash.snap" \
  < "$DIR/trace.jsonl" > "$DIR/part2.out" 2> "$DIR/restore.err"

head -n "$M" "$DIR/part1.out" > "$DIR/combined.out"
cat "$DIR/part2.out" >> "$DIR/combined.out"
if ! diff -q "$DIR/full.out" "$DIR/combined.out" > /dev/null; then
  echo "FAIL: reply stream diverged across the crash/restore boundary" >&2
  echo "  (killed at $MID replies, snapshot covered $M lines)" >&2
  diff "$DIR/full.out" "$DIR/combined.out" | head -n 10 >&2
  exit 1
fi
echo "PASS: killed at >=$MID replies, snapshot at $M lines, $FULL_LINES-line stream identical (threads=$THREADS)"
