#!/usr/bin/env bash
# Fault-injection soak for nfvm-serve.
#
#   serve_fault_smoke.sh <nfvm-serve> <nfvm-serve-client> <workdir>
#
# Replays a fixed-seed trace with a deterministic fault plan (garbage line,
# duplicate depart, unknown depart, stalls) under a tight inflight queue and
# request deadline, then asserts:
#   * the daemon exits 0 - no fault crashes it;
#   * every injected protocol fault got a structured {"ok":false,...} reply;
#   * still one reply per input line;
#   * the stalls forced overload sheds (reject_cause "overload") and the
#     final stats reply reports them plus latency quantiles.
set -euo pipefail

SERVE=$1
CLIENT=$2
DIR=$3

rm -rf "$DIR"
mkdir -p "$DIR"

TOPO_ARGS=(--topology waxman --nodes 60 --seed 11)

"$CLIENT" "${TOPO_ARGS[@]}" --requests 600 --arrival-rate 20 \
  --mean-duration 40 --final-stats --out "$DIR/trace.jsonl" 2> "$DIR/client.err"
TRACE_LINES=$(wc -l < "$DIR/trace.jsonl")

cat > "$DIR/plan.json" <<'EOF'
{"schema": "nfvm-fault-plan-v1", "seed": 7, "faults": [
  {"line": 50, "kind": "garbage"},
  {"line": 80, "kind": "dup_depart"},
  {"line": 90, "kind": "unknown_depart"},
  {"line": 120, "kind": "stall_ms", "value": 150},
  {"line": 121, "kind": "stall_ms", "value": 150},
  {"line": 122, "kind": "stall_ms", "value": 150}
]}
EOF

set +e
"$SERVE" "${TOPO_ARGS[@]}" --algorithm online_cp \
  --fault-plan "$DIR/plan.json" --max-inflight 8 --request-deadline-ms 20 \
  < "$DIR/trace.jsonl" > "$DIR/out.jsonl" 2> "$DIR/serve.err"
STATUS=$?
set -e
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: daemon exited $STATUS under fault injection" >&2
  exit 1
fi

OUT_LINES=$(wc -l < "$DIR/out.jsonl")
if [ "$OUT_LINES" -ne "$TRACE_LINES" ]; then
  echo "FAIL: $OUT_LINES replies for $TRACE_LINES input lines" >&2
  exit 1
fi

ERRORS=$(grep -c '"ok":false' "$DIR/out.jsonl" || true)
if [ "$ERRORS" -lt 3 ]; then
  echo "FAIL: expected >=3 structured error replies (garbage, dup depart," \
       "unknown depart), got $ERRORS" >&2
  exit 1
fi
grep -q '"error":"parse"' "$DIR/out.jsonl" || {
  echo "FAIL: garbage line produced no parse error reply" >&2; exit 1; }
grep -q '"error":"invalid"' "$DIR/out.jsonl" || {
  echo "FAIL: bad departs produced no invalid-command reply" >&2; exit 1; }

STATS=$(grep '"cmd":"stats"' "$DIR/out.jsonl" | tail -n 1)
if [ -z "$STATS" ]; then
  echo "FAIL: no stats reply in the output" >&2
  exit 1
fi
SHED=$(printf '%s' "$STATS" | grep -o '"overload_rejects":[0-9]*' | cut -d: -f2)
if [ -z "$SHED" ] || [ "$SHED" -eq 0 ]; then
  echo "FAIL: stalls + deadline produced no overload sheds (stats: $STATS)" >&2
  exit 1
fi
printf '%s' "$STATS" | grep -q '"p99_us":' || {
  echo "FAIL: stats reply reports no p99 latency" >&2; exit 1; }
grep -q '"reject_cause":"overload"' "$DIR/out.jsonl" || {
  echo "FAIL: no shed reply carries reject_cause overload" >&2; exit 1; }

echo "PASS: $ERRORS structured errors, $SHED overload sheds, one reply per line ($OUT_LINES)"
